// Package transport implements the host transport stack under the RPC
// layer: reliable per-(peer, QoS) connections with segmentation,
// cumulative acknowledgements, retransmission timeouts, and pluggable
// congestion control.
//
// The default congestion control is Swift (Kumar et al., SIGCOMM 2020),
// the algorithm the paper's simulator uses (§6.1): delay-based AIMD with a
// fixed target delay, multiplicative decrease bounded to once per RTT, and
// sub-packet windows realised by pacing. A fixed-window controller is
// provided for theory-validation runs where congestion control must be
// disabled (Figure 10).
package transport

import (
	"aequitas/internal/sim"
)

// CC is a per-connection congestion controller. Window is expressed in
// packets (MTUs); values below 1 mean the connection is paced to less than
// one packet per RTT.
type CC interface {
	// OnAck processes an acknowledgement for ackedPkts packets with the
	// given RTT sample.
	OnAck(now sim.Time, rtt sim.Duration, ackedPkts int)
	// OnRetransmit reacts to a retransmission timeout.
	OnRetransmit(now sim.Time)
	// Window returns the current congestion window in packets.
	Window() float64
}

// Swift implements the Swift congestion control algorithm, simplified to
// a fixed target delay (the paper's fabric is a single switch, so no
// per-hop topology scaling term is needed).
type Swift struct {
	// Target is the end-to-end fabric delay target.
	Target sim.Duration
	// AI is the additive increase in packets per RTT.
	AI float64
	// Beta scales the multiplicative decrease with the delay excess.
	Beta float64
	// MaxMDF bounds a single multiplicative decrease (e.g. 0.5 halves the
	// window at most).
	MaxMDF float64
	// MinCwnd and MaxCwnd bound the window in packets.
	MinCwnd, MaxCwnd float64

	cwnd         float64
	lastDecrease sim.Time
	lastRTT      sim.Duration
}

// SwiftDefaults returns a Swift controller with the published default
// shape: AI of 1 packet per RTT, β = 0.8, max decrease 50 %, window in
// [0.01, 256] packets.
func SwiftDefaults(target sim.Duration) *Swift {
	return &Swift{
		Target:  target,
		AI:      1.0,
		Beta:    0.8,
		MaxMDF:  0.5,
		MinCwnd: 0.01,
		MaxCwnd: 256,
		cwnd:    16,
	}
}

// Window implements CC.
func (sw *Swift) Window() float64 { return sw.cwnd }

// OnAck implements CC: additive increase while delay is under target,
// multiplicative decrease proportional to the excess otherwise, at most
// once per RTT.
func (sw *Swift) OnAck(now sim.Time, rtt sim.Duration, ackedPkts int) {
	if ackedPkts <= 0 {
		return
	}
	sw.lastRTT = rtt
	if rtt < sw.Target {
		n := float64(ackedPkts)
		if sw.cwnd >= 1 {
			sw.cwnd += sw.AI * n / sw.cwnd
		} else {
			sw.cwnd += sw.AI * n
		}
	} else if sw.canDecrease(now, rtt) {
		excess := float64(rtt-sw.Target) / float64(rtt)
		factor := 1 - sw.Beta*excess
		if floor := 1 - sw.MaxMDF; factor < floor {
			factor = floor
		}
		sw.cwnd *= factor
		sw.lastDecrease = now
	}
	sw.clamp()
}

// OnRetransmit implements CC: a timeout is a strong congestion signal, so
// apply the maximum decrease (still once per RTT).
func (sw *Swift) OnRetransmit(now sim.Time) {
	if sw.canDecrease(now, sw.lastRTT) {
		sw.cwnd *= 1 - sw.MaxMDF
		sw.lastDecrease = now
	}
	sw.clamp()
}

func (sw *Swift) canDecrease(now sim.Time, rtt sim.Duration) bool {
	if rtt <= 0 {
		rtt = sw.Target
	}
	return now-sw.lastDecrease >= rtt
}

func (sw *Swift) clamp() {
	if sw.cwnd < sw.MinCwnd {
		sw.cwnd = sw.MinCwnd
	}
	if sw.cwnd > sw.MaxCwnd {
		sw.cwnd = sw.MaxCwnd
	}
}

// Fixed is a constant-window controller: congestion control disabled. It
// is used to replay the theoretical model (Figure 10), where the paper
// disables CC and enlarges buffers.
type Fixed struct{ W float64 }

// OnAck implements CC (no-op).
func (f Fixed) OnAck(sim.Time, sim.Duration, int) {}

// OnRetransmit implements CC (no-op).
func (f Fixed) OnRetransmit(sim.Time) {}

// Window implements CC.
func (f Fixed) Window() float64 { return f.W }
