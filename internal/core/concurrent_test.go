package core

import (
	"sync"
	"testing"

	"aequitas/internal/qos"
	"aequitas/internal/sim"
)

// TestConcurrentAdmitObserve drives admits and observes from many
// goroutines against overlapping (dst, class) channels and checks the
// invariants the sharded state must hold under contention: every decision
// is counted exactly once, every observation lands in exactly one SLO
// counter, and no admit probability ever leaves [floor, 1]. Run under
// -race this is the controller's data-race check.
func TestConcurrentAdmitObserve(t *testing.T) {
	ct := MustNew(Defaults3(target(), 2*target())) // wall clock
	const workers = 8
	const perWorker = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				dst := (w + i) % 4
				class := qos.Class(i % 2)
				ct.Admit(dst, class, 1)
				// Alternate misses and compliant completions so p moves in
				// both directions while others read it.
				rnl := 100 * target()
				if i%3 == 0 {
					rnl = target() / 2
				}
				ct.Observe(dst, class, rnl, 1)
				if p := ct.AdmitProbability(dst, class); p < ct.Config().Floor-1e-12 || p > 1+1e-12 {
					t.Errorf("p_admit = %v out of [%v, 1]", p, ct.Config().Floor)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	st := ct.Stats.Load()
	const total = workers * perWorker
	if got := st.Admitted + st.Downgraded + st.Dropped; got != total {
		t.Errorf("decisions %d (admitted %d + downgraded %d + dropped %d), want %d",
			got, st.Admitted, st.Downgraded, st.Dropped, total)
	}
	if got := st.SLOMet + st.SLOMisses; got != total {
		t.Errorf("observations %d (met %d + misses %d), want %d",
			got, st.SLOMet, st.SLOMisses, total)
	}
	// Every touched channel still reports a sane probability, and the
	// reporting surface sees all of them.
	seen := 0
	ct.ForEachState(ct.Clock().Now(), func(dst int, class qos.Class, p float64, _ sim.Duration) {
		seen++
		if p < ct.Config().Floor-1e-12 || p > 1+1e-12 {
			t.Errorf("final p_admit(%d, %v) = %v", dst, class, p)
		}
	})
	if seen != 8 { // 4 dsts × 2 classes
		t.Errorf("ForEachState visited %d channels, want 8", seen)
	}
}

// TestConcurrentReset interleaves Reset with admits and observes: state
// recreation must never lose the [floor, 1] invariant or crash.
func TestConcurrentReset(t *testing.T) {
	ct := MustNew(Defaults3(target(), 2*target()))
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				ct.Admit(i%3, qos.High, 1)
				ct.Observe(i%3, qos.High, 100*target(), 1)
			}
		}()
	}
	for i := 0; i < 100; i++ {
		ct.Reset()
		if p := ct.AdmitProbability(0, qos.High); p < ct.Config().Floor-1e-12 || p > 1+1e-12 {
			t.Errorf("p_admit = %v after reset", p)
		}
	}
	close(stop)
	wg.Wait()
}

// TestConcurrentQuota races Grant/Revoke from a control plane against
// InQuota checks on serving goroutines — the QuotaServer/QuotaClient
// concurrency contract.
func TestConcurrentQuota(t *testing.T) {
	q := NewQuotaServer(map[qos.Class]float64{qos.High: 1e9, qos.Medium: 1e9})
	if err := q.Grant("tenant", qos.High, 1e6); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := q.Client("tenant")
			now := sim.Time(0)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				now += sim.Microsecond
				c.InQuotaAt(now, qos.High, 100)
				c.InQuota(qos.High, 100)
			}
		}(w)
	}
	for i := 0; i < 500; i++ {
		if err := q.Grant("tenant", qos.High, 1000); err != nil {
			t.Error(err)
			break
		}
		q.Revoke("tenant", qos.High, 1000)
		if r := q.GrantedRate("tenant", qos.High); r < 0 {
			t.Errorf("granted rate went negative: %v", r)
			break
		}
		q.Remaining(qos.High)
	}
	close(stop)
	wg.Wait()
	if got := q.GrantedRate("tenant", qos.High); got != 1e6 {
		t.Errorf("final granted rate %v, want 1e6", got)
	}
}

// TestMetricsSamplerAllocFree pins the satellite fix: steady-state metric
// sampling must not allocate (the per-sample fmt.Sprintf is cached per
// (host, dst, class) key).
func TestMetricsSamplerAllocFree(t *testing.T) {
	s := sim.New(1)
	ct := newCtlSim(t, s)
	for dst := 0; dst < 4; dst++ {
		ct.Observe(dst, qos.High, 100*target(), 1)
		ct.Observe(dst, qos.Medium, 100*target(), 1)
	}
	sampler := ct.MetricsSampler(3)
	sink := func(string, float64) {}
	sampler(s.Now(), sink) // warm the name cache and scratch buffer
	if allocs := testing.AllocsPerRun(100, func() { sampler(s.Now(), sink) }); allocs != 0 {
		t.Errorf("MetricsSampler allocates %v per sample in steady state, want 0", allocs)
	}
}
