package aequitas

import (
	"time"

	"aequitas/internal/scenario"
	"aequitas/internal/sim"
	"aequitas/internal/workload"
)

// TrafficPattern generates a traffic matrix — which hosts send to which
// destinations — for a HostTraffic entry. Patterns are expanded and
// validated up front when the configuration is checked.
type TrafficPattern = scenario.Pattern

// UniformPattern is the all-to-all matrix: every host sends to every
// other host uniformly. This is also the default when a HostTraffic
// entry leaves Hosts, Dsts and Pattern unset.
func UniformPattern() TrafficPattern { return scenario.Uniform{} }

// IncastPattern converges fanin senders onto host 0 — the canonical
// many-to-one overload. fanin 0 means every other host sends.
func IncastPattern(fanin int) TrafficPattern { return scenario.Incast{Fanin: fanin} }

// IncastPatternTo is IncastPattern with an explicit receiver.
func IncastPatternTo(fanin, dst int) TrafficPattern {
	return scenario.Incast{Fanin: fanin, Dst: dst}
}

// PermutationPattern pairs host i with destination (i+1) mod n: each
// host sends to exactly one peer and receives from exactly one peer.
func PermutationPattern() TrafficPattern { return scenario.Permutation{} }

// HotspotPattern skews the all-to-all matrix: every sender directs
// share (in (0,1)) of its traffic at host hot and spreads the rest
// evenly; the hot host itself sends uniformly.
func HotspotPattern(hot int, share float64) TrafficPattern {
	return scenario.Hotspot{Hot: hot, Share: share}
}

// LoadShape scales a traffic entry's offered load over simulated time,
// turning the static AvgLoad into a step, ramp, or on/off cycle.
type LoadShape = workload.LoadShape

// ConstantLoad keeps the offered load at AvgLoad for the whole run; the
// same as leaving Shape nil.
func ConstantLoad() LoadShape { return workload.Constant{} }

// StepLoad multiplies the offered load by factor from time at onward —
// e.g. StepLoad(5*time.Millisecond, 2) doubles the load mid-run.
func StepLoad(at time.Duration, factor float64) LoadShape {
	return workload.Step{At: sim.FromStd(at), Factor: factor}
}

// RampLoad interpolates the load factor linearly from 1 at time from to
// factor at time to, holding factor afterwards.
func RampLoad(from, to time.Duration, factor float64) LoadShape {
	return workload.Ramp{From: sim.FromStd(from), To: sim.FromStd(to), Factor: factor}
}

// OnOffLoad cycles the load between full-on and silence: each period
// starts with duty (in (0,1]) of on-time followed by an off phase.
func OnOffLoad(period time.Duration, duty float64) LoadShape {
	return workload.OnOff{Period: sim.FromStd(period), Duty: duty}
}

// Systems returns the names of all registered systems, sorted; these are
// the values the -system CLI flag accepts.
func Systems() []string { return scenario.Names() }
