package aequitas

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"aequitas/internal/core"
	"aequitas/internal/netsim"
	"aequitas/internal/obs/flight"
	"aequitas/internal/qos"
	"aequitas/internal/sim"
)

// Class identifies a network QoS level; 0 is the highest. The lowest
// configured class is the scavenger: it carries best-effort and
// downgraded traffic and has no SLO.
type Class = qos.Class

// The standard three levels.
const (
	High   = qos.High
	Medium = qos.Medium
	Low    = qos.Low
)

// Priority is an application-level RPC priority class.
type Priority = qos.Priority

// The paper's three priority classes: performance-critical, non-critical,
// best-effort.
const (
	PC = qos.PC
	NC = qos.NC
	BE = qos.BE
)

// SLO defines one QoS class's RPC network-latency objective.
type SLO struct {
	// Target is the RNL objective for an RPC of ReferenceBytes. The
	// controller normalises it per MTU internally, so larger RPCs get
	// proportionally larger absolute targets.
	Target time.Duration
	// ReferenceBytes is the RPC size Target refers to. Zero means Target
	// is already the per-MTU budget.
	ReferenceBytes int64
	// Percentile is the tail the SLO is defined at (default 99.9). It
	// controls how conservatively the admit probability is raised.
	Percentile float64
}

// perMTU converts the SLO to the per-MTU target Algorithm 1 consumes.
func (s SLO) perMTU() sim.Duration {
	t := sim.FromStd(s.Target)
	if s.ReferenceBytes > 0 {
		t = t / sim.Duration(netsim.MTUsFor(s.ReferenceBytes))
	}
	return t
}

// ControllerConfig parameterises an AdmissionController.
type ControllerConfig struct {
	// SLOs lists the objectives for every class except the lowest, from
	// the highest class down. len(SLOs)+1 is the number of QoS levels.
	SLOs []SLO
	// Alpha is the additive increment of the admit probability (default
	// 0.01).
	Alpha float64
	// Beta is the multiplicative decrement per SLO miss per MTU of RPC
	// size (default 0.01).
	Beta float64
	// Floor is the admit probability's lower bound, preventing
	// starvation (default 0.01).
	Floor float64
	// Now supplies timestamps, injectable for tests. When nil and Seed is
	// zero the controller runs on a lock-free monotonic wall clock — the
	// live serving configuration.
	Now func() time.Time
	// Seed seeds the probabilistic admission draw for deterministic
	// embeddings. Setting Seed (or Now) serialises draws behind a mutex;
	// leave both zero on serving paths.
	Seed int64
}

// Decision is the controller's verdict for one RPC.
type Decision struct {
	// Class is the QoS level to issue the RPC on.
	Class Class
	// Downgraded reports that the RPC was demoted to the scavenger
	// class. Applications receive this explicitly (Algorithm 1 lines
	// 10-11) and may react by prioritising their most critical RPCs.
	Downgraded bool
	// Dropped reports that the RPC must not be sent at all. It only
	// occurs with a quota admitter running fail-closed during a
	// quota-plane outage (see SetQuota).
	Dropped bool
}

// ControllerStats is a point-in-time snapshot of an AdmissionController's
// cumulative decision and observation counters.
type ControllerStats struct {
	Admitted   int64
	Downgraded int64
	Dropped    int64
	SLOMisses  int64
	SLOMet     int64
	// Expired counts requests rejected before the admission draw because
	// their remaining deadline budget could not cover the observed
	// latency floor (see RecordExpired).
	Expired int64
}

// AdmissionController is the Aequitas algorithm packaged for a real RPC
// stack: one instance per sending process. It is safe for concurrent use:
// Admit is lock-free on the hot path (an atomic peer-table load plus the
// core controller's sharded state), and Observe serialises only on the
// single (peer, class) channel it updates.
//
// Usage per RPC: call Admit with the destination and the requested class,
// issue the RPC on the returned class (e.g. via the DSCP field), and on
// completion call Observe with the measured RPC network latency.
type AdmissionController struct {
	inner *core.Controller
	mu    sync.Mutex // guards peer-table inserts
	peers atomic.Pointer[peerTable]
	// quota, when set, layers a tenant quota bypass (and its stale-lease
	// failure policy) over the probabilistic path.
	quota atomic.Pointer[core.QuotaAdmitter]
}

// peerTable interns peer names to dense destination IDs. It is immutable;
// inserts replace the whole table copy-on-write so readers never lock.
type peerTable struct {
	ids   map[string]int
	names []string
}

// lockedClock adapts an injected timestamp source and seeded RNG to
// core.Clock for deterministic embeddings. Draws serialise on a mutex —
// fine for tests, wrong for serving (use the default wall clock there).
type lockedClock struct {
	now   func() time.Time
	epoch time.Time
	mu    sync.Mutex
	rng   *rand.Rand
}

func (c *lockedClock) Now() sim.Time { return sim.FromStd(c.now().Sub(c.epoch)) }

func (c *lockedClock) Float64() float64 {
	c.mu.Lock()
	v := c.rng.Float64()
	c.mu.Unlock()
	return v
}

// NewController validates cfg and builds a controller.
func NewController(cfg ControllerConfig) (*AdmissionController, error) {
	return NewControllerWithClock(cfg, nil)
}

// NewControllerWithClock is NewController with an explicit time-and-draw
// source. A non-nil clk overrides cfg.Now and cfg.Seed — the hook that
// lets deterministic serving tests share one core.ManualClock between
// the controller and the serve layer.
func NewControllerWithClock(cfg ControllerConfig, clk core.Clock) (*AdmissionController, error) {
	if len(cfg.SLOs) == 0 {
		return nil, fmt.Errorf("aequitas: at least one SLO class required")
	}
	levels := len(cfg.SLOs) + 1
	cc := core.Config{
		Levels:            levels,
		LatencyTargets:    make([]sim.Duration, levels),
		TargetPercentiles: make([]float64, levels),
		Alpha:             cfg.Alpha,
		Beta:              cfg.Beta,
		Floor:             cfg.Floor,
	}
	if cc.Alpha == 0 {
		cc.Alpha = 0.01
	}
	if cc.Beta == 0 {
		cc.Beta = 0.01
	}
	if cc.Floor == 0 {
		cc.Floor = 0.01
	}
	for i, s := range cfg.SLOs {
		cc.LatencyTargets[i] = s.perMTU()
		cc.TargetPercentiles[i] = s.Percentile
		if cc.TargetPercentiles[i] == 0 {
			cc.TargetPercentiles[i] = 99.9
		}
	}
	if clk == nil && (cfg.Now != nil || cfg.Seed != 0) {
		now := cfg.Now
		if now == nil {
			now = time.Now
		}
		seed := cfg.Seed
		if seed == 0 {
			seed = 1
		}
		clk = &lockedClock{now: now, epoch: now(), rng: rand.New(rand.NewSource(seed))}
	}
	inner, err := core.NewWithClock(cc, clk)
	if err != nil {
		return nil, err
	}
	c := &AdmissionController{inner: inner}
	c.peers.Store(&peerTable{ids: map[string]int{}})
	return c, nil
}

// peerID interns peer, lock-free when the peer has been seen before.
func (c *AdmissionController) peerID(peer string) int {
	if id, ok := c.peers.Load().ids[peer]; ok {
		return id
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	old := c.peers.Load()
	if id, ok := old.ids[peer]; ok {
		return id
	}
	next := &peerTable{
		ids:   make(map[string]int, len(old.ids)+1),
		names: make([]string, len(old.names), len(old.names)+1),
	}
	for k, v := range old.ids {
		next.ids[k] = v
	}
	copy(next.names, old.names)
	id := len(next.names)
	next.ids[peer] = id
	next.names = append(next.names, peer)
	c.peers.Store(next)
	return id
}

// Admit decides the QoS class for an RPC of sizeBytes toward peer that
// requested the given class.
func (c *AdmissionController) Admit(peer string, requested Class, sizeBytes int64) Decision {
	dst, mtus := c.peerID(peer), netsim.MTUsFor(sizeBytes)
	if qa := c.quota.Load(); qa != nil {
		d := qa.Admit(dst, requested, mtus)
		return Decision{Class: d.Class, Downgraded: d.Downgraded, Dropped: d.Drop}
	}
	d := c.inner.Admit(dst, requested, mtus)
	return Decision{Class: d.Class, Downgraded: d.Downgraded}
}

// SetQuota layers a tenant quota over the controller: RPCs within the
// client's leased rate bypass the probabilistic draw, and quota-plane
// outages past the lease TTL are handled per policy (fail-open falls
// through to the normal path, fail-closed drops SLO-class RPCs). A nil
// client removes the layer. Attach before serving begins.
func (c *AdmissionController) SetQuota(client *core.QuotaClient, policy core.QuotaFailPolicy) {
	if client == nil {
		c.quota.Store(nil)
		return
	}
	c.quota.Store(&core.QuotaAdmitter{Controller: c.inner, Client: client, Policy: policy})
}

// QuotaStats snapshots the quota layer's counters; ok is false when no
// quota client is attached.
type QuotaStats struct {
	// Policy is the stale-lease failure policy in effect.
	Policy core.QuotaFailPolicy
	// InQuotaAdmits counts RPCs admitted on the quota bypass.
	InQuotaAdmits int64
	// StalePassed counts RPCs that fell through to the probabilistic path
	// on a stale lease under fail-open.
	StalePassed int64
	// StaleDropped counts RPCs dropped on a stale lease under fail-closed.
	StaleDropped int64
	// Lease is the underlying client's lease-health snapshot.
	Lease core.QuotaLeaseStats
}

// QuotaStats reports the quota layer's counters, or ok=false when no
// quota client is attached.
func (c *AdmissionController) QuotaStats() (QuotaStats, bool) {
	qa := c.quota.Load()
	if qa == nil {
		return QuotaStats{}, false
	}
	return QuotaStats{
		Policy:        qa.Policy,
		InQuotaAdmits: atomic.LoadInt64(&qa.InQuotaAdmits),
		StalePassed:   atomic.LoadInt64(&qa.StalePassed),
		StaleDropped:  atomic.LoadInt64(&qa.StaleDropped),
		Lease:         qa.Client.LeaseStats(),
	}, true
}

// RecordExpired counts (and flight-records) a request rejected before
// the admission draw because its remaining deadline budget could not
// cover the observed latency floor — the serving layer's
// expired-before-admit verdict.
func (c *AdmissionController) RecordExpired(peer string, requested Class, sizeBytes int64) {
	c.inner.RecordExpired(c.peerID(peer), requested, netsim.MTUsFor(sizeBytes))
}

// IncrementWindow reports class's additive-increase window: the earliest
// interval after which a rejected sender could observe a higher admit
// probability, and therefore the natural Retry-After hint. Classes
// without an SLO report zero.
func (c *AdmissionController) IncrementWindow(class Class) time.Duration {
	return c.inner.IncrementWindow(class).Std()
}

// Scavenger reports the lowest configured class — the SLO-free level
// that carries best-effort and downgraded traffic.
func (c *AdmissionController) Scavenger() Class { return c.inner.Scavenger() }

// Clock exposes the controller's time-and-draw source so colocated
// layers (serving middleware, brownout) share one time base.
func (c *AdmissionController) Clock() core.Clock { return c.inner.Clock() }

// Observe feeds back one completed RPC's measured network latency on the
// class it actually ran on.
func (c *AdmissionController) Observe(peer string, ran Class, rnl time.Duration, sizeBytes int64) {
	c.inner.Observe(c.peerID(peer), ran, sim.FromStd(rnl), netsim.MTUsFor(sizeBytes))
}

// AdmitProbability reports the current admit probability toward peer on
// the given class, for monitoring.
func (c *AdmissionController) AdmitProbability(peer string, class Class) float64 {
	return c.inner.AdmitProbability(c.peerID(peer), class)
}

// Stats returns an atomic snapshot of the controller's cumulative
// counters, safe to call while other goroutines admit and observe.
func (c *AdmissionController) Stats() ControllerStats {
	s := c.inner.Stats.Load()
	return ControllerStats{
		Admitted:   s.Admitted,
		Downgraded: s.Downgraded,
		Dropped:    s.Dropped,
		SLOMisses:  s.SLOMisses,
		SLOMet:     s.SLOMet,
		Expired:    s.Expired,
	}
}

// SetFlight attaches a flight recorder to the controller: every
// admission decision and SLO observation lands in r as a fixed-size
// record, ready to dump when an anomaly trigger fires. A nil r detaches.
// Attach before serving begins.
func (c *AdmissionController) SetFlight(r *flight.Ring) { c.inner.SetFlight(r, 0) }

// Flight returns the attached flight recorder, or nil.
func (c *AdmissionController) Flight() *flight.Ring { return c.inner.Flight() }

// PeerName resolves an interned peer id back to its name, for rendering
// flight dumps; unknown ids yield "".
func (c *AdmissionController) PeerName(id int32) string {
	names := c.peers.Load().names
	if id >= 0 && int(id) < len(names) {
		return names[id]
	}
	return ""
}

// MinAdmitProbability reports the minimum admit probability across every
// live (peer, class) channel, or 1 when no channel exists yet — the
// scalar the anomaly engine watches for admission collapse.
func (c *AdmissionController) MinAdmitProbability() float64 {
	minP := 1.0
	c.inner.ForEachState(c.inner.Clock().Now(), func(_ int, _ qos.Class, p float64, _ sim.Duration) {
		if p < minP {
			minP = p
		}
	})
	return minP
}

// ForEachProbability visits every (peer, class) admission channel in
// deterministic order with its current admit probability — the live
// metrics surface.
func (c *AdmissionController) ForEachProbability(f func(peer string, class Class, pAdmit float64)) {
	names := c.peers.Load().names
	c.inner.ForEachState(c.inner.Clock().Now(), func(dst int, class qos.Class, p float64, _ sim.Duration) {
		if dst >= 0 && dst < len(names) {
			f(names[dst], class, p)
		}
	})
}
