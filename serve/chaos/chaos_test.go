package chaos

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"aequitas/internal/core"
	"aequitas/internal/sim"
)

func TestParsePlan(t *testing.T) {
	src := `
# overload drill
1s slow 20ms
2s errs 0.3
3s skew 5ms
4s quotadown
5s quotaup
6s errs 0
7s slow
`
	p, err := ParsePlan(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Events) != 7 {
		t.Fatalf("parsed %d events", len(p.Events))
	}
	want := []Event{
		{At: time.Second, Kind: Slow, Amount: 20 * time.Millisecond},
		{At: 2 * time.Second, Kind: Errors, Rate: 0.3},
		{At: 3 * time.Second, Kind: Skew, Amount: 5 * time.Millisecond},
		{At: 4 * time.Second, Kind: QuotaDown},
		{At: 5 * time.Second, Kind: QuotaUp},
		{At: 6 * time.Second, Kind: Errors},
		{At: 7 * time.Second, Kind: Slow},
	}
	for i, w := range want {
		if p.Events[i] != w {
			t.Errorf("event %d = %+v, want %+v", i, p.Events[i], w)
		}
	}
}

func TestParsePlanErrors(t *testing.T) {
	for _, bad := range []string{
		"1s explode",
		"soon slow 2ms",
		"1s errs 1.5",
		"1s slow 2ms extra junk",
		"1s",
	} {
		if _, err := ParsePlan(strings.NewReader(bad)); err == nil {
			t.Errorf("ParsePlan(%q) accepted", bad)
		}
	}
}

func TestWindows(t *testing.T) {
	p := &Plan{Events: []Event{
		{At: 1 * time.Second, Kind: Slow, Amount: 20 * time.Millisecond},
		{At: 2 * time.Second, Kind: QuotaDown},
		{At: 3 * time.Second, Kind: Slow},
		{At: 4 * time.Second, Kind: QuotaUp},
		{At: 5 * time.Second, Kind: Errors, Rate: 0.5}, // never cleared
	}}
	ws := p.Windows()
	if len(ws) != 3 {
		t.Fatalf("windows = %+v", ws)
	}
	if ws[0].Kind != Slow || ws[0].Start != time.Second || ws[0].End != 3*time.Second {
		t.Errorf("slow window = %+v", ws[0])
	}
	if ws[1].Kind != QuotaDown || ws[1].End != 4*time.Second {
		t.Errorf("quota window = %+v", ws[1])
	}
	if ws[2].Kind != Errors || ws[2].End < time.Hour {
		t.Errorf("open errors window = %+v", ws[2])
	}
}

func TestPresets(t *testing.T) {
	for _, name := range PresetNames() {
		p, err := Preset(name, time.Minute)
		if err != nil {
			t.Fatalf("Preset(%q): %v", name, err)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("Preset(%q) invalid: %v", name, err)
		}
		if p.Empty() {
			t.Errorf("Preset(%q) empty", name)
		}
	}
	if _, err := Preset("nope", time.Minute); err == nil {
		t.Error("unknown preset accepted")
	}
}

type fakeQuota struct{ up, down int }

func (f *fakeQuota) SetAvailable(up bool) {
	if up {
		f.up++
	} else {
		f.down++
	}
}

func TestInjectorAdvance(t *testing.T) {
	fq := &fakeQuota{}
	inj := NewInjector(&Plan{Events: []Event{
		{At: 1 * time.Second, Kind: Slow, Amount: 5 * time.Millisecond},
		{At: 1 * time.Second, Kind: QuotaDown},
		{At: 2 * time.Second, Kind: Errors, Rate: 0.4},
		{At: 3 * time.Second, Kind: Slow},
		{At: 3 * time.Second, Kind: QuotaUp},
	}}, fq)
	inj.Advance(500 * time.Millisecond)
	if inj.ExtraLatency() != 0 || fq.down != 0 {
		t.Error("events applied early")
	}
	inj.Advance(1 * time.Second)
	if inj.ExtraLatency() != 5*time.Millisecond || fq.down != 1 {
		t.Errorf("at 1s: extra=%v down=%d", inj.ExtraLatency(), fq.down)
	}
	inj.Advance(2500 * time.Millisecond)
	if inj.ErrorRate() != 0.4 {
		t.Errorf("at 2.5s: rate=%v", inj.ErrorRate())
	}
	if inj.Done() {
		t.Error("Done before the last event")
	}
	inj.Advance(10 * time.Second)
	if inj.ExtraLatency() != 0 || fq.up != 1 || !inj.Done() {
		t.Errorf("at end: extra=%v up=%d done=%v", inj.ExtraLatency(), fq.up, inj.Done())
	}
	if inj.Applied() != 5 {
		t.Errorf("Applied = %d", inj.Applied())
	}
}

func TestInjectorWrapErrors(t *testing.T) {
	inj := NewInjector(&Plan{Events: []Event{
		{At: 0, Kind: Errors, Rate: 1},
	}}, nil)
	inj.Advance(0)
	h := inj.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t.Error("handler ran during a rate-1 error burst")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("code = %d", rec.Code)
	}
}

func TestInjectorClockSkew(t *testing.T) {
	base := &core.ManualClock{}
	base.SetNow(sim.Time(1000))
	inj := NewInjector(&Plan{Events: []Event{
		{At: 1 * time.Second, Kind: Skew, Amount: 5 * time.Millisecond},
		{At: 2 * time.Second, Kind: Skew},
	}}, nil)
	clk := inj.Clock(base)
	if clk.Now() != base.Now() {
		t.Error("skew applied before its event")
	}
	inj.Advance(1 * time.Second)
	if got, want := clk.Now(), base.Now()+sim.FromStd(5*time.Millisecond); got != want {
		t.Errorf("skewed now = %v, want %v", got, want)
	}
	inj.Advance(2 * time.Second)
	if clk.Now() != base.Now() {
		t.Error("skew not cleared")
	}
}
