package baselines

import (
	"aequitas/internal/netsim"
	"aequitas/internal/sim"
	"aequitas/internal/transport"
)

const kindDeadlineDone uint8 = 10

// DeadlinePolicy selects the allocation discipline.
type DeadlinePolicy int

const (
	// PolicyD3 is D3's greedy first-come-first-served allocation: each
	// deadline flow asks for remaining/(deadline−now); requests are
	// granted in arrival order; leftover capacity is split equally.
	PolicyD3 DeadlinePolicy = iota
	// PolicyPDQ is PDQ's preemptive earliest-deadline-first: the
	// earliest-deadline flow gets as much as it can use, then the next.
	PolicyPDQ
)

// DeadlineConfig parameterises a deadline fabric.
type DeadlineConfig struct {
	Policy DeadlinePolicy
	// LineRate bounds each link's allocation (default 100 Gbps).
	LineRate sim.Rate
	// Reallocate is the allocation refresh interval, standing in for
	// per-RTT rate-request headers (default 10 µs).
	Reallocate sim.Duration
	// DefaultDeadline is assumed for flows without one so that D3/PDQ —
	// which have no notion of deadline-less performance flows — can
	// still schedule them; zero means such flows only ever receive
	// leftover capacity.
	DefaultDeadline sim.Duration
}

func (c *DeadlineConfig) applyDefaults() {
	if c.LineRate == 0 {
		c.LineRate = 100 * sim.Gbps
	}
	if c.Reallocate == 0 {
		c.Reallocate = 10 * sim.Microsecond
	}
}

// DeadlineFabric models D3/PDQ's in-network rate allocation explicitly:
// one allocator per host uplink and per host downlink; a flow's rate is
// the minimum of its two links' grants. This substitutes for wire-format
// rate-request headers (the paper's simulator models those; behaviourally
// the observable outcomes — who meets deadlines, early termination, and
// the resulting network utilisation — are what Figure 22 measures).
type DeadlineFabric struct {
	cfg   DeadlineConfig
	hosts int
	flows map[uint64]*dlFlow
	next  uint64
	// senders[i] is host i's DeadlineSender, for receive dispatch.
	senders []*DeadlineSender
	// Terminated counts flows abandoned because their deadline became
	// infeasible ("better never than late").
	Terminated int64
	started    bool
}

// NewDeadlineFabric creates the shared allocator for a topology of the
// given host count.
func NewDeadlineFabric(hosts int, cfg DeadlineConfig) *DeadlineFabric {
	cfg.applyDefaults()
	return &DeadlineFabric{
		cfg:     cfg,
		hosts:   hosts,
		flows:   make(map[uint64]*dlFlow),
		senders: make([]*DeadlineSender, hosts),
	}
}

type dlFlow struct {
	id        uint64
	src, dst  int
	m         *transport.Message
	remaining int64
	deadline  sim.Time // 0 = none
	arrival   sim.Time
	rate      sim.Rate
	sending   bool
	acked     bool
}

// DeadlineSender is one host's D3/PDQ transport.
type DeadlineSender struct {
	fabric *DeadlineFabric
	host   *netsim.Host
	// received tracks inbound per-message byte counts.
	received map[homaInKey]int64
}

// NewDeadlineSender attaches a sender for host to the shared fabric.
func NewDeadlineSender(f *DeadlineFabric, host *netsim.Host) *DeadlineSender {
	ds := &DeadlineSender{fabric: f, host: host, received: make(map[homaInKey]int64)}
	host.SetReceiver(ds)
	f.senders[host.ID] = ds
	return ds
}

// Send implements rpc.Sender.
func (ds *DeadlineSender) Send(s *sim.Simulator, m *transport.Message) {
	m.SubmitTime = s.Now()
	f := ds.fabric
	f.next++
	fl := &dlFlow{
		id: f.next, src: ds.host.ID, dst: m.Dst, m: m,
		remaining: m.Bytes, deadline: m.Deadline, arrival: s.Now(),
	}
	if fl.deadline == 0 && f.cfg.DefaultDeadline > 0 {
		fl.deadline = s.Now() + f.cfg.DefaultDeadline
	}
	f.flows[fl.id] = fl
	f.reallocate(s)
	if !f.started {
		f.started = true
		f.tick(s)
	}
	ds.pump(s, fl)
}

// tick refreshes allocations periodically while flows exist.
func (f *DeadlineFabric) tick(s *sim.Simulator) {
	if len(f.flows) == 0 {
		f.started = false
		return
	}
	f.kickAll(s)
	s.AfterFunc(f.cfg.Reallocate, func(s *sim.Simulator) { f.tick(s) })
}

// kickAll reallocates and restarts any flow that regained a rate. It runs
// on the periodic tick and on every flow completion, so freed capacity is
// reassigned immediately (PDQ senders react within an RTT; waiting for
// the next tick would idle the link after each short flow).
func (f *DeadlineFabric) kickAll(s *sim.Simulator) {
	f.reallocate(s)
	// Restart in flow-id order, not map order: pump schedules simulator
	// events, and same-timestamp events fire in scheduling order, so map
	// iteration here would make whole runs nondeterministic.
	pending := make([]*dlFlow, 0, len(f.flows))
	for _, fl := range f.flows {
		if fl.rate > 0 && !fl.sending {
			pending = append(pending, fl)
		}
	}
	sortFlows(pending, func(a, b *dlFlow) bool { return a.id < b.id })
	for _, fl := range pending {
		f.senders[fl.src].pump(s, fl)
	}
}

// reallocate recomputes flow rates with a single global pass in policy
// order against per-link residual capacities. Granting a flow on both of
// its links atomically avoids the pathological mismatch where a flow wins
// its uplink but is shut out of its downlink (the real protocols converge
// to consistent per-path rates via iterative hop-by-hop headers; the
// atomic grant reproduces that fixed point directly). Infeasible deadline
// flows are terminated first.
func (f *DeadlineFabric) reallocate(s *sim.Simulator) {
	now := s.Now()
	// Terminate hopeless deadline flows: even at full line rate the
	// remaining bytes cannot arrive in time.
	for id, fl := range f.flows {
		if fl.deadline == 0 {
			continue
		}
		left := fl.deadline - now
		if left <= 0 || f.cfg.LineRate.TxTime(int(fl.remaining)) > left {
			fl.rate = 0
			delete(f.flows, id)
			f.Terminated++
		}
	}

	ordered := make([]*dlFlow, 0, len(f.flows))
	for _, fl := range f.flows {
		ordered = append(ordered, fl)
	}
	if f.cfg.Policy == PolicyPDQ {
		// EDF, deadline-less flows last.
		sortFlows(ordered, func(a, b *dlFlow) bool {
			ad, bd := a.deadline, b.deadline
			if ad == 0 {
				ad = sim.MaxTime
			}
			if bd == 0 {
				bd = sim.MaxTime
			}
			if ad != bd {
				return ad < bd
			}
			return a.id < b.id
		})
	} else {
		// D3: first come, first served.
		sortFlows(ordered, func(a, b *dlFlow) bool {
			if a.arrival != b.arrival {
				return a.arrival < b.arrival
			}
			return a.id < b.id
		})
	}

	capacity := float64(f.cfg.LineRate)
	upRes := make([]float64, f.hosts)
	downRes := make([]float64, f.hosts)
	for h := 0; h < f.hosts; h++ {
		upRes[h], downRes[h] = capacity, capacity
	}
	grant := make(map[uint64]float64, len(ordered))

	// Pass 1: grant desired rates in policy order.
	for _, fl := range ordered {
		avail := minf(upRes[fl.src], downRes[fl.dst])
		if avail <= 0 {
			continue
		}
		var want float64
		switch {
		case f.cfg.Policy == PolicyPDQ:
			// Preemptive: the most urgent flow takes all it can use.
			want = avail
		case fl.deadline > 0:
			left := (fl.deadline - now).Seconds()
			if left <= 0 {
				continue
			}
			want = minf(float64(fl.remaining)*8/left, avail)
		default:
			continue // deadline-less flows share leftovers in pass 2
		}
		grant[fl.id] = want
		upRes[fl.src] -= want
		downRes[fl.dst] -= want
	}

	// Pass 2: split each downlink's leftover equally among its flows,
	// bounded by uplink residuals.
	byDown := make([][]*dlFlow, f.hosts)
	for _, fl := range ordered {
		byDown[fl.dst] = append(byDown[fl.dst], fl)
	}
	for h := 0; h < f.hosts; h++ {
		flows := byDown[h]
		if len(flows) == 0 || downRes[h] <= 0 {
			continue
		}
		share := downRes[h] / float64(len(flows))
		for _, fl := range flows {
			g := minf(share, upRes[fl.src])
			if g <= 0 {
				continue
			}
			grant[fl.id] += g
			upRes[fl.src] -= g
			downRes[h] -= g
		}
	}

	for _, fl := range ordered {
		fl.rate = sim.Rate(grant[fl.id])
	}
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// pump emits packets for fl paced at its allocated rate.
func (ds *DeadlineSender) pump(s *sim.Simulator, fl *dlFlow) {
	if fl.sending {
		return
	}
	f := ds.fabric
	if _, live := f.flows[fl.id]; !live || fl.rate <= 0 || fl.remaining <= 0 {
		return
	}
	fl.sending = true
	payload := min64(int64(netsim.MaxPayload), fl.remaining)
	p := &netsim.Packet{
		Dst:      fl.dst,
		Class:    fl.m.Class,
		Size:     int(payload) + netsim.HeaderBytes,
		MsgID:    fl.id,
		Seq:      fl.m.Bytes - fl.remaining,
		Payload:  int(payload),
		SentAt:   s.Now(),
		Urg:      fl.remaining,
		AckSeq:   fl.m.Bytes,
		Deadline: fl.deadline,
	}
	fl.remaining -= payload
	ds.host.Send(s, p)
	gap := fl.rate.TxTime(p.Size)
	s.AfterFunc(gap, func(s *sim.Simulator) {
		fl.sending = false
		if fl.remaining > 0 {
			ds.pump(s, fl)
		}
	})
}

// HandlePacket implements netsim.Handler.
func (ds *DeadlineSender) HandlePacket(s *sim.Simulator, p *netsim.Packet) {
	if p.Kind == kindDeadlineDone {
		ds.onDone(s, p)
		return
	}
	k := homaInKey{p.Src, p.MsgID}
	ds.received[k] += int64(p.Payload)
	if ds.received[k] >= p.AckSeq { // AckSeq carries the total size
		delete(ds.received, k)
		ds.host.Send(s, &netsim.Packet{
			Dst:   p.Src,
			Class: p.Class,
			Size:  netsim.AckBytes,
			Kind:  kindDeadlineDone,
			MsgID: p.MsgID,
		})
	}
}

func (ds *DeadlineSender) onDone(s *sim.Simulator, p *netsim.Packet) {
	f := ds.fabric
	fl, ok := f.flows[p.MsgID]
	if !ok || fl.acked {
		return
	}
	fl.acked = true
	delete(f.flows, p.MsgID)
	if fl.m.OnComplete != nil {
		fl.m.OnComplete(s, fl.m)
	}
	f.kickAll(s)
}

// sortFlows is insertion sort (flow lists per link are short and this
// avoids pulling in reflection-based sorting in the hot loop).
func sortFlows(fs []*dlFlow, less func(a, b *dlFlow) bool) {
	for i := 1; i < len(fs); i++ {
		for j := i; j > 0 && less(fs[j], fs[j-1]); j-- {
			fs[j], fs[j-1] = fs[j-1], fs[j]
		}
	}
}
