package netsim

import (
	"fmt"

	"aequitas/internal/obs"
	"aequitas/internal/sim"
	"aequitas/internal/wfq"
)

// SchedulerFactory builds one egress scheduler instance. Each host uplink
// and each switch egress port receives its own instance.
type SchedulerFactory func() wfq.Scheduler

// Config describes a star topology.
type Config struct {
	// Hosts is the number of end hosts attached to the switch.
	Hosts int
	// LinkRate applies to every host<->switch link (the paper evaluates
	// at 100 Gbps throughout).
	LinkRate sim.Rate
	// PropDelay is the one-way propagation delay of each link.
	PropDelay sim.Duration
	// SwitchSched builds the scheduler for each switch egress port
	// (downlink toward a host). Defaults to 3-class WFQ 8:4:1 with 2 MB
	// per class.
	SwitchSched SchedulerFactory
	// HostSched builds the scheduler for each host uplink NIC. Defaults
	// to the same discipline as SwitchSched.
	HostSched SchedulerFactory
	// Topology selects the fabric shape (default: single-switch star).
	Topology Topology
}

func (c *Config) applyDefaults() {
	if c.LinkRate == 0 {
		c.LinkRate = 100 * sim.Gbps
	}
	if c.PropDelay == 0 {
		c.PropDelay = 500 * sim.Nanosecond
	}
	if c.SwitchSched == nil {
		c.SwitchSched = func() wfq.Scheduler {
			return wfq.NewWFQ([]float64{8, 4, 1}, 2<<20)
		}
	}
	if c.HostSched == nil {
		c.HostSched = c.SwitchSched
	}
}

// Network is the simulated fabric: a single-switch star or a two-tier
// leaf-spine, per Config.Topology.
type Network struct {
	cfg    Config
	hosts  []*Host
	nextID uint64

	// downlinks[i] is the last-hop link delivering to host i, whichever
	// switch owns it.
	downlinks []*Link

	// Star topology.
	sw *Switch

	// Leaf-spine topology.
	leaves []*leafSwitch
	spines []*spineSwitch
	leafOf func(host int) int

	// byName indexes links for fault-injection targeting; built lazily.
	byName map[string]*Link

	// pktFree recycles Packet structs through the transport's send/ack
	// path. Each simulation is single-threaded and owns its Network, so no
	// synchronisation is needed; steady-state packet traffic then allocates
	// nothing. Packets that never reach a FreePacket call (drops, packets
	// consumed by baseline receivers) simply fall to the garbage collector.
	pktFree []*Packet
}

// AllocPacket returns a zeroed packet, reusing a recycled one when
// available. Callers fill the fields they need; all fields start at their
// zero values.
func (n *Network) AllocPacket() *Packet {
	if k := len(n.pktFree); k > 0 {
		p := n.pktFree[k-1]
		n.pktFree[k-1] = nil
		n.pktFree = n.pktFree[:k-1]
		return p
	}
	return &Packet{}
}

// FreePacket recycles p. The caller must hold the only live reference: p is
// zeroed and handed to the next AllocPacket.
func (n *Network) FreePacket(p *Packet) {
	*p = Packet{}
	n.pktFree = append(n.pktFree, p)
}

// Host is an end host: an uplink into the switch and a receive handler.
type Host struct {
	ID     int
	Uplink *Link
	net    *Network
	recv   Handler
}

// Switch is an output-queued switch: packets arriving from any host are
// immediately placed on the egress port (downlink) toward their
// destination.
type Switch struct {
	downlinks []*Link
}

// HandlePacket implements Handler: route by destination host.
func (sw *Switch) HandlePacket(s *sim.Simulator, p *Packet) {
	if p.Dst < 0 || p.Dst >= len(sw.downlinks) {
		panic(fmt.Sprintf("netsim: packet to unknown host %d", p.Dst))
	}
	sw.downlinks[p.Dst].Send(s, p)
}

// New builds the topology. Receivers are attached afterwards with
// Host.SetReceiver.
func New(cfg Config) (*Network, error) {
	cfg.applyDefaults()
	if cfg.Hosts < 2 {
		return nil, fmt.Errorf("netsim: need at least 2 hosts, got %d", cfg.Hosts)
	}
	n := &Network{cfg: cfg}
	if cfg.Topology.Leaves > 0 {
		if err := n.buildLeafSpine(cfg); err != nil {
			return nil, err
		}
		return n, nil
	}
	n.sw = &Switch{}
	for i := 0; i < cfg.Hosts; i++ {
		h := &Host{ID: i, net: n}
		// Downlink: switch -> host i.
		down := NewLink(fmt.Sprintf("down-%d", i), cfg.LinkRate, cfg.PropDelay, cfg.SwitchSched(), h)
		n.sw.downlinks = append(n.sw.downlinks, down)
		n.downlinks = append(n.downlinks, down)
		// Uplink: host i -> switch.
		h.Uplink = NewLink(fmt.Sprintf("up-%d", i), cfg.LinkRate, cfg.PropDelay, cfg.HostSched(), n.sw)
		n.hosts = append(n.hosts, h)
	}
	return n, nil
}

// Hosts reports the number of hosts.
func (n *Network) Hosts() int { return len(n.hosts) }

// Host returns host i.
func (n *Network) Host(i int) *Host { return n.hosts[i] }

// Downlink returns the last-hop egress port toward host i, for occupancy
// instrumentation and drop accounting.
func (n *Network) Downlink(i int) *Link { return n.downlinks[i] }

// LinkByName returns the named link, or nil. The index is built on first
// use from ForEachLink's deterministic order.
func (n *Network) LinkByName(name string) *Link {
	if n.byName == nil {
		n.byName = make(map[string]*Link)
		n.ForEachLink(func(l *Link) { n.byName[l.Name] = l })
	}
	return n.byName[name]
}

// NextPacketID allocates a unique packet id.
func (n *Network) NextPacketID() uint64 {
	n.nextID++
	return n.nextID
}

// MinRTT returns the no-queuing round-trip time for a data packet of size
// dataBytes answered by an ACK, for the longest path in the topology
// (cross-leaf in a leaf-spine fabric).
func (n *Network) MinRTT(dataBytes int) sim.Duration {
	r := n.cfg.LinkRate
	hops := sim.Duration(2)
	if len(n.leaves) > 0 {
		hops = 4
	}
	return hops*(r.TxTime(dataBytes)+r.TxTime(AckBytes)) + 2*hops*n.cfg.PropDelay
}

// HandlePacket implements Handler: deliver to the attached receiver.
func (h *Host) HandlePacket(s *sim.Simulator, p *Packet) {
	if h.recv == nil {
		return
	}
	h.recv.HandlePacket(s, p)
}

// SetReceiver attaches the host's packet consumer (the transport demux).
func (h *Host) SetReceiver(r Handler) { h.recv = r }

// Send transmits p from this host via its uplink. p.Src is set to the
// host's id.
func (h *Host) Send(s *sim.Simulator, p *Packet) {
	p.Src = h.ID
	if p.ID == 0 {
		p.ID = h.net.NextPacketID()
	}
	h.Uplink.Send(s, p)
}

// ForEachLink visits every link in a fixed order — host uplinks, then
// last-hop downlinks, then core links — so instrumentation wired through
// it (tracing, metrics columns) is deterministic run to run.
func (n *Network) ForEachLink(f func(*Link)) {
	for _, h := range n.hosts {
		f(h.Uplink)
	}
	for _, d := range n.downlinks {
		f(d)
	}
	for _, c := range n.CoreLinks() {
		f(c)
	}
}

// SetTracer points every link's per-hop tracer at tr (nil detaches).
func (n *Network) SetTracer(tr *obs.Tracer) {
	n.ForEachLink(func(l *Link) { l.Trace = tr })
}

// SetAttributor points every link's latency attributor at a (nil
// detaches).
func (n *Network) SetAttributor(a *obs.Attributor) {
	n.ForEachLink(func(l *Link) { l.Attr = a })
}

// SetAuditor points every link's QoS-bound auditor at a (nil detaches).
func (n *Network) SetAuditor(a *obs.Auditor) {
	n.ForEachLink(func(l *Link) { l.Audit = a })
}

// MetricsSampler returns an obs.Sampler reporting, for every egress port,
// the scheduler's queued bytes and packets and the cumulative drop count —
// the per-port WFQ occupancy the paper's queueing analysis reasons about.
func (n *Network) MetricsSampler() obs.Sampler {
	return func(now sim.Time, emit func(string, float64)) {
		n.ForEachLink(func(l *Link) {
			emit("q."+l.Name+".bytes", float64(l.Sched.QueuedBytes()))
			emit("q."+l.Name+".pkts", float64(l.Sched.QueuedItems()))
			emit("drop."+l.Name+".pkts", float64(l.Stats.DropPackets))
		})
	}
}

// TotalDropped sums packet drops across all links in the network,
// including core links in a leaf-spine fabric.
func (n *Network) TotalDropped() (packets, bytes int64) {
	for _, h := range n.hosts {
		packets += h.Uplink.Stats.DropPackets
		bytes += h.Uplink.Stats.DropBytes
	}
	for _, d := range n.downlinks {
		packets += d.Stats.DropPackets
		bytes += d.Stats.DropBytes
	}
	for _, c := range n.CoreLinks() {
		packets += c.Stats.DropPackets
		bytes += c.Stats.DropBytes
	}
	return packets, bytes
}

// TotalDelivered sums bytes transmitted on last-hop downlinks (traffic
// that reached hosts).
func (n *Network) TotalDelivered() (packets, bytes int64) {
	for _, d := range n.downlinks {
		packets += d.Stats.TxPackets
		bytes += d.Stats.TxBytes
	}
	return packets, bytes
}
