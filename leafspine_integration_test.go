package aequitas

import (
	"testing"
	"time"
)

// coreOverload builds a leaf-spine fabric whose core is 4:1
// oversubscribed: 8 hosts across 2 leaves, one spine, cross-leaf traffic
// only. Overload occurs at the leaf→spine uplink — not at any edge link —
// exercising the paper's claim that Aequitas handles overload anywhere on
// the path (§2.2.2, §3.1).
func coreOverload(system System, seed int64) SimConfig {
	return SimConfig{
		System:     system,
		Hosts:      8,
		Leaves:     2,
		Spines:     1,
		Seed:       seed,
		Duration:   40 * time.Millisecond,
		Warmup:     15 * time.Millisecond,
		QoSWeights: []float64{4, 1},
		SLOs: []SLO{{
			Target:         40 * time.Microsecond,
			ReferenceBytes: 32 << 10,
			Percentile:     99.9,
		}},
		Traffic: []HostTraffic{{
			Hosts:   []int{0, 1, 2, 3}, // leaf 0
			Dsts:    []int{4, 5, 6, 7}, // leaf 1: all traffic crosses the core
			AvgLoad: 0.9,
			Classes: []TrafficClass{
				{Priority: PC, Share: 0.6, FixedBytes: 32 << 10},
				{Priority: BE, Share: 0.4, FixedBytes: 32 << 10},
			},
		}},
	}
}

func TestLeafSpineCoreOverloadBaseline(t *testing.T) {
	res, err := Run(coreOverload(SystemBaseline, 1))
	if err != nil {
		t.Fatal(err)
	}
	// 3.6x offered load into a 1x core: the QoSh tail must blow through
	// the 40us SLO without admission control.
	if p := res.RNLQuantileUS(High, 0.999); p < 80 {
		t.Errorf("baseline core-overload QoSh 99.9p = %.1fus; expected violation", p)
	}
}

func TestLeafSpineCoreOverloadAequitas(t *testing.T) {
	res, err := Run(coreOverload(SystemAequitas, 1))
	if err != nil {
		t.Fatal(err)
	}
	if p := res.RNLQuantileUS(High, 0.999); p > 40*1.8 {
		t.Errorf("Aequitas core-overload QoSh 99.9p = %.1fus, SLO 40us not tracked", p)
	}
	if res.Downgraded == 0 {
		t.Error("no downgrades under core overload")
	}
	// Aequitas needs no knowledge of *where* the overload is: the same
	// host-local algorithm handled a core bottleneck.
	base, err := Run(coreOverload(SystemBaseline, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.RNLQuantileUS(High, 0.999) >= base.RNLQuantileUS(High, 0.999) {
		t.Error("Aequitas did not improve the core-congested tail")
	}
}

func TestLeafSpineLocalTrafficUnaffected(t *testing.T) {
	// Intra-leaf traffic should not suffer from cross-leaf core
	// congestion (it never crosses the spine).
	cfg := coreOverload(SystemBaseline, 2)
	cfg.Traffic = append(cfg.Traffic, HostTraffic{
		Hosts:   []int{4},
		Dsts:    []int{5}, // same leaf
		AvgLoad: 0.1,
		Classes: []TrafficClass{{Priority: PC, Share: 1, FixedBytes: 4 << 10}},
	})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Mixed sample includes cross-leaf congestion victims; the local
	// 4 KB RPCs dominate the p50 of the small-size class. We check the
	// overall completion count instead: local traffic must flow.
	if res.Completed == 0 {
		t.Fatal("nothing completed")
	}
}

func TestLeafSpineConfigValidation(t *testing.T) {
	cfg := coreOverload(SystemBaseline, 1)
	cfg.Leaves = 3 // 8 % 3 != 0
	if _, err := Run(cfg); err == nil {
		t.Error("invalid leaf division accepted")
	}
}
