module aequitas

go 1.22
