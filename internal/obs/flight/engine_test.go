package flight

import (
	"strings"
	"testing"

	"aequitas/internal/sim"
)

// tickSeries drives an engine with a miss fraction per tick and returns
// the first trigger, if any.
func tickSeries(e *Engine, ticks int, every sim.Duration, missFrac float64, minP float64) (Trigger, bool) {
	var met, miss int64
	for i := 1; i <= ticks; i++ {
		miss += int64(100 * missFrac)
		met += int64(100 * (1 - missFrac))
		if tr, ok := e.Tick(sim.Time(i)*every, met, miss, minP); ok {
			return tr, true
		}
	}
	return Trigger{}, false
}

func TestEngineBurnRateFires(t *testing.T) {
	e := NewEngine(EngineConfig{
		ShortWindow: 100 * sim.Millisecond,
		LongWindow:  sim.Second,
		SLOBudget:   0.01,
	})
	// 50% miss rate = 50x budget burn: must fire once both windows have
	// enough samples.
	tr, ok := tickSeries(e, 100, 10*sim.Millisecond, 0.5, 1)
	if !ok {
		t.Fatal("burn-rate trigger never fired at 50x budget")
	}
	if tr.Kind != TriggerBurnRate {
		t.Fatalf("fired %v, want burn_rate", tr.Kind)
	}
	if !strings.Contains(tr.Detail, "burn") {
		t.Fatalf("detail %q lacks burn rates", tr.Detail)
	}
}

func TestEngineQuietUnderBudget(t *testing.T) {
	e := NewEngine(EngineConfig{
		ShortWindow: 100 * sim.Millisecond,
		LongWindow:  sim.Second,
		SLOBudget:   0.01,
	})
	// 0.5% misses is half the budget: no trigger, ever.
	if tr, ok := tickSeries(e, 500, 10*sim.Millisecond, 0.005, 1); ok {
		t.Fatalf("fired %v under budget", tr)
	}
}

func TestEngineNeedsMinSamples(t *testing.T) {
	e := NewEngine(EngineConfig{
		ShortWindow: 100 * sim.Millisecond,
		LongWindow:  sim.Second,
		SLOBudget:   0.01,
		MinSamples:  1_000_000,
	})
	if tr, ok := tickSeries(e, 200, 10*sim.Millisecond, 1.0, 1); ok {
		t.Fatalf("fired %v below MinSamples", tr)
	}
}

func TestEngineCooldown(t *testing.T) {
	e := NewEngine(EngineConfig{
		ShortWindow: 100 * sim.Millisecond,
		LongWindow:  sim.Second,
		SLOBudget:   0.01,
		Cooldown:    sim.Second,
	})
	var met, miss int64
	fires := 0
	for i := 1; i <= 300; i++ {
		miss += 50
		met += 50
		if _, ok := e.Tick(sim.Time(i)*10*sim.Millisecond, met, miss, 1); ok {
			fires++
		}
	}
	// 3 s of sustained 50x burn with a 1 s cooldown: at most one fire per
	// cooldown period plus the first.
	if fires == 0 || fires > 4 {
		t.Fatalf("fired %d times over 3s with 1s cooldown", fires)
	}
	if e.Fired() != fires {
		t.Fatalf("Fired() = %d, want %d", e.Fired(), fires)
	}
}

func TestEnginePAdmitDropFires(t *testing.T) {
	e := NewEngine(EngineConfig{
		ShortWindow: 100 * sim.Millisecond,
		LongWindow:  sim.Second,
		PAdmitDrop:  0.4,
	})
	var met int64
	// Healthy completions, but the admit probability collapses.
	for i := 1; i <= 50; i++ {
		met += 100
		p := 1.0
		if i > 25 {
			p = 1.0 - float64(i-25)*0.05
		}
		if tr, ok := e.Tick(sim.Time(i)*10*sim.Millisecond, met, 0, p); ok {
			if tr.Kind != TriggerPAdmitDrop {
				t.Fatalf("fired %v, want padmit_drop", tr.Kind)
			}
			if !strings.Contains(tr.Detail, "p_admit") {
				t.Fatalf("detail %q", tr.Detail)
			}
			return
		}
	}
	t.Fatal("p_admit drop trigger never fired on a 1.0 to <0.6 collapse")
}

func TestEngineDeterministicDetail(t *testing.T) {
	run := func() string {
		e := NewEngine(EngineConfig{ShortWindow: 100 * sim.Millisecond, LongWindow: sim.Second, SLOBudget: 0.01})
		tr, ok := tickSeries(e, 100, 10*sim.Millisecond, 0.5, 1)
		if !ok {
			t.Fatal("no trigger")
		}
		return tr.Detail + "@" + tr.At.String()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("trigger not deterministic:\n%s\n%s", a, b)
	}
}

func TestTriggerKindStrings(t *testing.T) {
	for name, kind := range triggerKinds {
		if kind.String() != name {
			t.Errorf("TriggerKind %d String() = %q, want %q", kind, kind.String(), name)
		}
	}
}
