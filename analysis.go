package aequitas

import "aequitas/internal/calculus"

// DelayBoundHigh returns the worst-case normalized WFQ delay of the high
// class in the 2-QoS burst model of §4.1 (Equation 1): phi is the
// QoSh:QoSl weight ratio, rho the burst load (>1), mu the average load,
// and x the QoSh-share of the arriving traffic. Delays are fractions of
// the arrival period.
func DelayBoundHigh(phi, rho, mu, x float64) float64 {
	return calculus.TwoQoS{Phi: phi, Rho: rho, Mu: mu}.DelayHigh(x)
}

// DelayBoundLow is the low-class counterpart (Equation 8).
func DelayBoundLow(phi, rho, mu, x float64) float64 {
	return calculus.TwoQoS{Phi: phi, Rho: rho, Mu: mu}.DelayLow(x)
}

// WorstCaseDelays generalises the bounds to any number of QoS classes via
// the fluid WFQ model: given per-class weights and a QoS-mix, it returns
// each class's worst-case normalized delay under the Figure 7 burst
// pattern.
func WorstCaseDelays(weights, mix []float64, rho, mu float64) ([]float64, error) {
	return calculus.WorstCaseDelays(weights, mix, rho, mu)
}

// AdmissibleShare returns the largest contiguous QoSh-share x such that
// no priority inversion occurs for any share ≤ x (Equation 3), with the
// non-QoSh remainder of the mix split by restMix (which must sum to 1
// across the remaining classes).
func AdmissibleShare(weights []float64, restMix []float64, rho, mu float64) (float64, error) {
	mixAt := func(x float64) []float64 {
		out := make([]float64, len(weights))
		out[0] = x
		for i, r := range restMix {
			out[i+1] = (1 - x) * r
		}
		return out
	}
	return calculus.AdmissibleBoundary(weights, mixAt, rho, mu, 512)
}

// MaxShareForSLO returns the largest QoSh-share admissible at the given
// normalized delay bound in the 2-QoS model — the knob an operator uses
// to pick SLOs from latency-versus-mix profiles (§4.2).
func MaxShareForSLO(phi, rho, mu, bound float64) float64 {
	return calculus.TwoQoS{Phi: phi, Rho: rho, Mu: mu}.MaxShareForDelay(bound)
}

// GuaranteedShare is the §5.2 lower bound on traffic admitted on class i
// as a fraction of line rate: (φi/Σφ)·(µ/ρ).
func GuaranteedShare(weights []float64, class int, mu, rho float64) float64 {
	return calculus.GuaranteedShare(weights, class, mu, rho)
}
