package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"aequitas/internal/sim"
)

// fill records one event of every kind on t, in a valid lifecycle order.
func fill(t *Tracer) {
	t.Issue(0, 1, 0, 3, 0, 0, 4096)
	t.Admit(sim.Microsecond, 1, 0, 3, 0, DecisionAdmit, 0.75)
	t.Enqueue(2*sim.Microsecond, 1, 0, 3, 0, 4096)
	t.Hop(3*sim.Microsecond, 1, "h0-up", 0, 1500, sim.Microsecond, 3000)
	t.Drop(4*sim.Microsecond, 2, "sw-down3", 2, 1500)
	t.Complete(5*sim.Microsecond, 1, 0, 3, 0, 4096, 5*sim.Microsecond)
	t.Fault(6*sim.Microsecond, FaultLinkDown, "h0-up", 0)
	t.Fault(7*sim.Microsecond, FaultLoss, "h0-up", 0.01)
}

func TestNDJSONRoundTrip(t *testing.T) {
	tr := NewTracer()
	fill(tr)
	var buf bytes.Buffer
	if err := tr.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	n, err := ValidateNDJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("validate: %v", err)
	}
	if n != tr.Len() {
		t.Errorf("validated %d events, recorded %d", n, tr.Len())
	}
	// Every line must decode as JSON with exactly the schema's fields.
	for i, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %d: %v", i+1, err)
		}
		kind := m["kind"].(string)
		want := map[string]bool{"ts_us": true, "kind": true, "rpc": true}
		for _, f := range SchemaFields(kind) {
			want[f] = true
		}
		for k := range m {
			if !want[k] {
				t.Errorf("line %d (%s): unexpected field %q", i+1, kind, k)
			}
		}
		if len(m) != len(want) {
			t.Errorf("line %d (%s): %d fields, want %d", i+1, kind, len(m), len(want))
		}
	}
}

func TestValidateNDJSONRejects(t *testing.T) {
	cases := map[string]string{
		"bad json":        `{"ts_us":1,`,
		"missing ts":      `{"kind":"issue","rpc":1,"src":0,"dst":1,"prio":0,"class":0,"bytes":1}`,
		"negative ts":     `{"ts_us":-1,"kind":"issue","rpc":1,"src":0,"dst":1,"prio":0,"class":0,"bytes":1}`,
		"unknown kind":    `{"ts_us":1,"kind":"warp","rpc":1}`,
		"missing rpc":     `{"ts_us":1,"kind":"drop","link":"x","class":0,"bytes":1}`,
		"missing field":   `{"ts_us":1,"kind":"issue","rpc":1,"src":0,"dst":1,"prio":0,"class":0}`,
		"wrong type":      `{"ts_us":1,"kind":"drop","rpc":1,"link":7,"class":0,"bytes":1}`,
		"p_admit range":   `{"ts_us":1,"kind":"admit","rpc":1,"src":0,"dst":1,"class":0,"decision":"admit","p_admit":1.5}`,
		"bad decision":    `{"ts_us":1,"kind":"admit","rpc":1,"src":0,"dst":1,"class":0,"decision":"maybe","p_admit":0.5}`,
		"negative resid":  `{"ts_us":1,"kind":"hop","rpc":1,"link":"x","class":0,"bytes":1,"resid_us":-2,"qbytes":0}`,
		"zero rnl":        `{"ts_us":1,"kind":"complete","rpc":1,"src":0,"dst":1,"class":0,"bytes":1,"rnl_us":0}`,
		"bad fault":       `{"ts_us":1,"kind":"fault","rpc":0,"event":"meteor","target":"x","rate":0}`,
		"bad fault rate":  `{"ts_us":1,"kind":"fault","rpc":0,"event":"loss","target":"x","rate":1.5}`,
		"time regression": "{\"ts_us\":5,\"kind\":\"drop\",\"rpc\":1,\"link\":\"x\",\"class\":0,\"bytes\":1}\n{\"ts_us\":4,\"kind\":\"drop\",\"rpc\":2,\"link\":\"x\",\"class\":0,\"bytes\":1}",
	}
	for name, in := range cases {
		if _, err := ValidateNDJSON(strings.NewReader(in)); err == nil {
			t.Errorf("%s: validated", name)
		}
	}
}

func TestChromeTraceJSON(t *testing.T) {
	tr := NewTracer()
	fill(tr)
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	phases := map[string]int{}
	for _, e := range doc.TraceEvents {
		phases[e["ph"].(string)]++
	}
	// b/e span for the RPC, X slice for the hop, i instants for
	// admit+enqueue+drop and the 2 faults, M metadata for the fabric
	// process + 2 links.
	for ph, want := range map[string]int{"b": 1, "e": 1, "X": 1, "i": 5, "M": 3} {
		if phases[ph] != want {
			t.Errorf("phase %q count = %d, want %d (all: %v)", ph, phases[ph], want, phases)
		}
	}
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	fill(tr) // must not panic
	if tr.Enabled() || tr.Len() != 0 || tr.Events() != nil {
		t.Error("nil tracer not inert")
	}
	if err := tr.WriteNDJSON(nil); err != nil {
		t.Error(err)
	}
	if err := tr.WriteChromeTrace(nil); err != nil {
		t.Error(err)
	}
}

// TestDisabledTracerAllocs proves the acceptance criterion: with
// observability disabled the event hot path performs zero allocations.
func TestDisabledTracerAllocs(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		fill(tr)
	})
	if allocs != 0 {
		t.Errorf("disabled tracer: %v allocs/op, want 0", allocs)
	}
}

func BenchmarkDisabledTracer(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Hop(sim.Time(i), uint64(i), "h0-up", 0, 1500, 0, 0)
	}
}

func BenchmarkEnabledTracerHop(b *testing.B) {
	tr := NewTracer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Hop(sim.Time(i), uint64(i), "h0-up", 0, 1500, 0, 0)
	}
}

func TestRegistryWideCSV(t *testing.T) {
	r := NewRegistry()
	tick := 0
	r.Register(func(now sim.Time, emit func(string, float64)) {
		emit("a", float64(tick))
		if tick >= 1 {
			emit("late", 7) // column appears on the second sample
		}
	})
	for ; tick < 3; tick++ {
		r.Sample(sim.Time(tick) * sim.Time(sim.Microsecond))
	}
	if got := r.Columns(); len(got) != 2 || got[0] != "a" || got[1] != "late" {
		t.Fatalf("columns = %v", got)
	}
	if r.Rows() != 3 {
		t.Fatalf("rows = %d", r.Rows())
	}
	if !math.IsNaN(r.Value(0, "late")) {
		t.Error("row 0 'late' should be NaN before the column appeared")
	}
	if v := r.Value(2, "late"); v != 7 {
		t.Errorf("row 2 'late' = %v", v)
	}
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "t_s,a,late" {
		t.Errorf("header = %q", lines[0])
	}
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	// First row's late cell is empty, not "NaN".
	if !strings.HasSuffix(lines[1], ",0,") {
		t.Errorf("row 1 = %q, want empty trailing cell", lines[1])
	}
	if !strings.HasSuffix(lines[3], ",2,7") {
		t.Errorf("row 3 = %q", lines[3])
	}
}

func TestNilRegistrySafe(t *testing.T) {
	var r *Registry
	r.Register(func(sim.Time, func(string, float64)) {})
	r.Sample(0)
	if r.Rows() != 0 || r.Columns() != nil || !math.IsNaN(r.Value(0, "x")) {
		t.Error("nil registry not inert")
	}
	if err := r.WriteCSV(nil); err != nil {
		t.Error(err)
	}
}
