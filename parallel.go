package aequitas

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"aequitas/internal/obs"
)

// ParallelOptions configures RunMany and Sweep.
type ParallelOptions struct {
	// Workers is the worker-pool size; <= 0 means runtime.GOMAXPROCS(0).
	// Results are identical for every worker count: each simulation is
	// fully self-contained, so parallelism changes wall-clock time only.
	Workers int
	// BaseSeed, when non-zero, replaces each configuration's Seed with
	// DeriveSeed(BaseSeed, i), giving sweep entries decorrelated but
	// reproducible seeds that depend only on the entry index — never on
	// worker count or completion order.
	BaseSeed int64
	// OnProgress, when set, is called once per finished configuration
	// (successful or not) with the sweep's live completion count. Calls
	// are serialized, so the callback may write to a shared sink without
	// locking, but completion order — and therefore the Index sequence —
	// depends on scheduling; only Done/Total are monotonic.
	OnProgress func(Progress)
}

// Progress is one RunMany progress notification.
type Progress struct {
	// Index is the configuration that just finished; Err is its error,
	// nil on success.
	Index int
	Err   error
	// Done configurations have finished so far, out of Total.
	Done, Total int
}

func (o ParallelOptions) workers(n int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	return w
}

// DeriveSeed returns the seed for sweep entry i under base: a SplitMix64
// finalizer over base and i. Adjacent indices yield statistically
// independent streams, and the mapping is a pure function, so a sweep
// rerun with the same base reproduces every entry exactly.
func DeriveSeed(base int64, i int) int64 {
	z := uint64(base) + uint64(i+1)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// RunMany executes every configuration via Run, fanning the independent
// simulations across a worker pool, and returns results in input order.
// Each simulation owns all of its state (simulator, RNG, network,
// collector), so runs neither share nor mutate anything; the only caveat
// is that configurations run concurrently must not share a TraceWriter.
//
// On failure RunMany still finishes the remaining configurations and
// returns the lowest-index error (deterministic regardless of scheduling);
// the result slice holds nil at failed indices.
func RunMany(cfgs []SimConfig, opts ParallelOptions) ([]*Results, error) {
	n := len(cfgs)
	results := make([]*Results, n)
	if n == 0 {
		return results, nil
	}
	errs := make([]error, n)
	next := int64(-1)
	var (
		wg         sync.WaitGroup
		progressMu sync.Mutex
		done       int
	)
	for w := opts.workers(n); w > 0; w-- {
		worker := w - 1
		wg.Add(1)
		go func() {
			defer wg.Done()
			// The pprof label attributes CPU samples to this worker in
			// -cpuprofile output; it has no effect on results.
			obs.DoWorker(worker, func() {
				for {
					i := int(atomic.AddInt64(&next, 1))
					if i >= n {
						return
					}
					cfg := cfgs[i]
					if opts.BaseSeed != 0 {
						cfg.Seed = DeriveSeed(opts.BaseSeed, i)
					}
					results[i], errs[i] = Run(cfg)
					if opts.OnProgress != nil {
						progressMu.Lock()
						done++
						opts.OnProgress(Progress{Index: i, Err: errs[i], Done: done, Total: n})
						progressMu.Unlock()
					}
				}
			})
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return results, fmt.Errorf("aequitas: sweep config %d: %w", i, err)
		}
	}
	return results, nil
}

// Sweep builds n configurations with mk and runs them through RunMany —
// the convenience form for figure generation ("one config per table row").
func Sweep(n int, mk func(i int) SimConfig, opts ParallelOptions) ([]*Results, error) {
	cfgs := make([]SimConfig, n)
	for i := range cfgs {
		cfgs[i] = mk(i)
	}
	return RunMany(cfgs, opts)
}
