package transport

import (
	"math/rand"
	"testing"

	"aequitas/internal/netsim"
	"aequitas/internal/qos"
	"aequitas/internal/sim"
)

// TestRecoveryFromRandomLoss injects independent per-packet random loss on
// every link (data and acks alike) and verifies the RTO path recovers
// everything: each message completes exactly once and BytesAcked matches
// the bytes submitted, with no duplicates from go-back-N retransmission.
func TestRecoveryFromRandomLoss(t *testing.T) {
	net := testNet(t, 3)
	lossRNG := rand.New(rand.NewSource(7))
	net.ForEachLink(func(l *netsim.Link) { l.SetLoss(0.02, lossRNG) })
	eps := make([]*Endpoint, 3)
	for i := range eps {
		eps[i] = NewEndpoint(net, net.Host(i), Config{
			NewCC:  func() CC { return SwiftDefaults(10 * sim.Microsecond) },
			RTOMin: 50 * sim.Microsecond,
		})
	}
	s := sim.New(1)
	const n = 30
	var total int64
	completions := map[uint64]int{}
	for i := 0; i < n; i++ {
		bytes := int64(5000 + 1000*i)
		total += bytes
		eps[0].Send(s, &Message{
			ID: uint64(i), Dst: 1 + i%2, Class: qos.Class(i % 3), Bytes: bytes,
			OnComplete: func(_ *sim.Simulator, m *Message) { completions[m.ID]++ },
		})
	}
	s.Run()
	for i := 0; i < n; i++ {
		if completions[uint64(i)] != 1 {
			t.Errorf("message %d completed %d times", i, completions[uint64(i)])
		}
	}
	if eps[0].Stats.BytesAcked != total {
		t.Errorf("BytesAcked = %d, want exactly %d", eps[0].Stats.BytesAcked, total)
	}
	var faultDrops int64
	net.ForEachLink(func(l *netsim.Link) { faultDrops += l.Stats.FaultDropPackets })
	if faultDrops == 0 {
		t.Error("loss injection did not actually drop anything; raise the rate")
	}
	if eps[0].Stats.Retransmits == 0 {
		t.Error("recovery happened without retransmissions?")
	}
}

// TestCrashDiscardsStateSilently crashes a receiver mid-transfer: the
// sender's message must not complete, the crashed endpoint must ignore
// traffic and sends until Restart, and no callbacks fire from Crash itself.
func TestCrashDiscardsStateSilently(t *testing.T) {
	net := testNet(t, 2)
	eps := endpoints(t, net, swiftCfg())
	s := sim.New(1)
	completed, failed := 0, 0
	eps[0].Send(s, &Message{
		ID: 1, Dst: 1, Class: qos.High, Bytes: 1 << 20,
		OnComplete: func(*sim.Simulator, *Message) { completed++ },
		OnFail:     func(*sim.Simulator, *Message) { failed++ },
	})
	s.AtFunc(5*sim.Microsecond, func(s *sim.Simulator) {
		eps[1].Crash(s)
		if !eps[1].Down() {
			t.Error("Down() false after Crash")
		}
		// A crashed endpoint drops its own sends on the floor.
		eps[1].Send(s, &Message{ID: 9, Dst: 0, Class: qos.High, Bytes: 100,
			OnComplete: func(*sim.Simulator, *Message) { t.Error("send from crashed host completed") }})
	})
	// Bound the run: the sender's RTO will keep retrying into the void.
	s.RunUntil(50 * sim.Millisecond)
	if completed != 0 {
		t.Errorf("message completed %d times against a crashed peer", completed)
	}
	if failed != 0 {
		t.Error("Crash fired OnFail on the remote sender (only ResetPeer should)")
	}
	if eps[1].Stats.MsgsSent != 0 {
		t.Error("crashed endpoint accepted a send")
	}
}

// TestResetPeerFailsInflightAndEpochRejectsStaleAcks covers the
// crash-notification path: ResetPeer fires OnFail for every incomplete
// message toward the peer, bumps the stream epoch so in-flight stale acks
// cannot complete re-sent messages, and a fresh attempt after the peer
// restarts completes normally.
func TestResetPeerFailsInflightAndEpochRejectsStaleAcks(t *testing.T) {
	net := testNet(t, 2)
	eps := endpoints(t, net, swiftCfg())
	s := sim.New(1)
	var failedIDs []uint64
	completed := map[uint64]int{}
	send := func(s *sim.Simulator, id uint64, class qos.Class) {
		eps[0].Send(s, &Message{
			ID: id, Dst: 1, Class: class, Bytes: 256 * 1024,
			OnComplete: func(_ *sim.Simulator, m *Message) { completed[m.ID]++ },
			OnFail:     func(_ *sim.Simulator, m *Message) { failedIDs = append(failedIDs, m.ID) },
		})
	}
	send(s, 1, qos.High)
	send(s, 2, qos.Low)
	// Mid-transfer, host 1 "crashes": its endpoint goes down and the
	// sender is notified, exactly as the run harness does it. Acks already
	// in flight from before the reset arrive afterward and must be
	// ignored (stale epoch), not credited to the retry stream.
	s.AtFunc(5*sim.Microsecond, func(s *sim.Simulator) {
		eps[1].Crash(s)
		eps[0].ResetPeer(s, 1)
		if len(failedIDs) != 2 || failedIDs[0] != 1 || failedIDs[1] != 2 {
			t.Fatalf("OnFail ids = %v, want [1 2] in class order", failedIDs)
		}
		// Retry immediately on the new epoch while the peer is still down,
		// then restart the peer shortly after.
		send(s, 3, qos.High)
	})
	s.AtFunc(200*sim.Microsecond, func(s *sim.Simulator) { eps[1].Restart(s) })
	s.Run()
	if completed[1] != 0 || completed[2] != 0 {
		t.Errorf("pre-crash messages completed: %v", completed)
	}
	if completed[3] != 1 {
		t.Errorf("post-reset retry completed %d times, want 1", completed[3])
	}
}

// TestReceiverEpochRestart verifies the receiver discards pre-crash
// reassembly state when the sender's epoch advances: a sender-side crash
// rebuilds the stream from offset zero and the receiver must follow.
func TestReceiverEpochRestart(t *testing.T) {
	net := testNet(t, 2)
	eps := endpoints(t, net, swiftCfg())
	s := sim.New(1)
	done := 0
	eps[0].Send(s, &Message{ID: 1, Dst: 1, Class: qos.High, Bytes: 1 << 20})
	s.AtFunc(5*sim.Microsecond, func(s *sim.Simulator) {
		// Sender crashes and restarts: stream state is gone, epoch bumped.
		eps[0].Crash(s)
		eps[0].Restart(s)
		eps[0].Send(s, &Message{ID: 2, Dst: 1, Class: qos.High, Bytes: 64 * 1024,
			OnComplete: func(*sim.Simulator, *Message) { done++ }})
	})
	s.Run()
	if done != 1 {
		t.Fatalf("post-restart message completed %d times, want 1", done)
	}
}
