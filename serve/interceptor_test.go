package serve

import (
	"context"
	"errors"
	"testing"
	"time"

	"aequitas"
	"aequitas/internal/core"
	"aequitas/internal/sim"
)

// newManualController builds a controller on a shared ManualClock with a
// generous (10ms) SLO, so tests steer admission purely through SetDraw
// and explicit clock advances. Draw 0 admits everything (p_admit never
// falls below the floor); draw 2 downgrades every SLO-class request.
func newManualController(t testing.TB) (*aequitas.AdmissionController, *core.ManualClock) {
	t.Helper()
	clk := &core.ManualClock{}
	clk.SetNow(sim.Time(1)) // non-zero so "no estimate" never collides
	ctl, err := aequitas.NewControllerWithClock(aequitas.ControllerConfig{
		SLOs: []aequitas.SLO{
			{Target: 10 * time.Millisecond},
			{Target: 10 * time.Millisecond},
		},
	}, clk)
	if err != nil {
		t.Fatal(err)
	}
	return ctl, clk
}

func callInterceptor(t testing.TB, icpt UnaryInterceptor, ctx context.Context, method string, h UnaryHandler) (any, error) {
	t.Helper()
	return icpt(ctx, "req", &UnaryServerInfo{FullMethod: method}, h)
}

func TestInterceptorVerdictPropagation(t *testing.T) {
	ctl, clk := newManualController(t)
	a, err := New(Config{Controller: ctl})
	if err != nil {
		t.Fatal(err)
	}
	icpt := a.UnaryInterceptor(nil)
	var got Verdict
	resp, err := callInterceptor(t, icpt, context.Background(), "/svc/Get",
		func(ctx context.Context, req any) (any, error) {
			v, ok := FromContext(ctx)
			if !ok {
				t.Fatal("verdict missing from handler context")
			}
			got = v
			clk.SetNow(clk.Now() + sim.Time(2*sim.Millisecond))
			return "resp", nil
		})
	if err != nil || resp != "resp" {
		t.Fatalf("interceptor = %v, %v", resp, err)
	}
	if got.Request.Peer != "/svc/Get" || got.Class != aequitas.High || got.Downgraded {
		t.Errorf("verdict = %+v", got)
	}
	// The 2ms handler ran inside the 10ms SLO, measured on the manual
	// clock, and landed as an SLO-met observation.
	cs := ctl.Stats()
	if cs.Admitted != 1 || cs.SLOMet != 1 || cs.SLOMisses != 0 {
		t.Errorf("stats = %+v", cs)
	}
}

func TestInterceptorDowngradeAndReject(t *testing.T) {
	ctl, clk := newManualController(t)
	clk.SetDraw(2) // every draw fails: SLO-class RPCs downgrade
	a, err := New(Config{Controller: ctl})
	if err != nil {
		t.Fatal(err)
	}
	var downgraded bool
	_, err = callInterceptor(t, a.UnaryInterceptor(nil), context.Background(), "/svc/Get",
		func(ctx context.Context, req any) (any, error) {
			v, _ := FromContext(ctx)
			downgraded = v.Downgraded
			return nil, nil
		})
	if err != nil {
		t.Fatalf("downgraded RPC failed: %v", err)
	}
	if !downgraded {
		t.Error("verdict not marked downgraded")
	}

	// With RejectDowngraded, the same draw rejects without running the
	// handler.
	rej, err := New(Config{Controller: ctl, RejectDowngraded: true})
	if err != nil {
		t.Fatal(err)
	}
	ran := false
	_, err = callInterceptor(t, rej.UnaryInterceptor(nil), context.Background(), "/svc/Get",
		func(ctx context.Context, req any) (any, error) {
			ran = true
			return nil, nil
		})
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v, want ErrRejected", err)
	}
	if ran {
		t.Error("handler ran for a rejected RPC")
	}
}

func TestInterceptorDeadlineRejection(t *testing.T) {
	ctl, clk := newManualController(t)
	a, err := New(Config{Controller: ctl, Deadline: &DeadlineConfig{}})
	if err != nil {
		t.Fatal(err)
	}
	icpt := a.UnaryInterceptor(nil)

	// Train the latency floor: one completion taking 50ms on the manual
	// clock.
	if _, err := callInterceptor(t, icpt, context.Background(), "/svc/Get",
		func(ctx context.Context, req any) (any, error) {
			clk.SetNow(clk.Now() + sim.Time(50*sim.Millisecond))
			return nil, nil
		}); err != nil {
		t.Fatal(err)
	}

	// A context deadline well below the floor fails fast, before the
	// handler.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	ran := false
	_, err = callInterceptor(t, icpt, ctx, "/svc/Get",
		func(ctx context.Context, req any) (any, error) {
			ran = true
			return nil, nil
		})
	if !errors.Is(err, ErrExpired) {
		t.Fatalf("err = %v, want ErrExpired", err)
	}
	if ran {
		t.Error("handler ran for an expired RPC")
	}
	if cs := ctl.Stats(); cs.Expired != 1 {
		t.Errorf("ctl Expired = %d", cs.Expired)
	}
	if got := a.m.expired.Load(); got != 1 {
		t.Errorf("serve expired counter = %d", got)
	}

	// A budget comfortably above the floor is served.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel2()
	if _, err := callInterceptor(t, icpt, ctx2, "/svc/Get",
		func(ctx context.Context, req any) (any, error) { return nil, nil }); err != nil {
		t.Fatalf("in-budget RPC failed: %v", err)
	}

	// An RPC without any deadline is never expired.
	if _, err := callInterceptor(t, icpt, context.Background(), "/svc/Get",
		func(ctx context.Context, req any) (any, error) { return nil, nil }); err != nil {
		t.Fatalf("deadline-free RPC failed: %v", err)
	}
}

func TestInterceptorMinBudget(t *testing.T) {
	ctl, _ := newManualController(t)
	a, err := New(Config{Controller: ctl, Deadline: &DeadlineConfig{MinBudget: 100 * time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	// No floor learned yet, but the static MinBudget still rejects.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err = callInterceptor(t, a.UnaryInterceptor(nil), ctx, "/svc/Get",
		func(ctx context.Context, req any) (any, error) { return nil, nil })
	if !errors.Is(err, ErrExpired) {
		t.Fatalf("err = %v, want ErrExpired", err)
	}
}

func TestInterceptorBrownoutShed(t *testing.T) {
	ctl, clk := newManualController(t)
	a, err := New(Config{Controller: ctl, Brownout: &BrownoutConfig{
		LatencyThreshold: time.Millisecond,
		Window:           time.Second,
		StepUpAfter:      1,
	}})
	if err != nil {
		t.Fatal(err)
	}
	icpt := a.UnaryInterceptor(nil)
	slowHandler := func(ctx context.Context, req any) (any, error) {
		clk.SetNow(clk.Now() + sim.Time(5*sim.Millisecond))
		return nil, nil
	}
	// Two slow completions a window apart: the second one's evaluation
	// sees a 100% slow window and steps the ladder up.
	for i := 0; i < 2; i++ {
		if _, err := callInterceptor(t, icpt, context.Background(), "/svc/Get", slowHandler); err != nil {
			t.Fatal(err)
		}
		clk.SetNow(clk.Now() + sim.Time(2*sim.Second))
	}
	if lvl := a.BrownoutLevel(); lvl != BrownoutThinScavenger {
		t.Fatalf("brownout level = %d, want %d", lvl, BrownoutThinScavenger)
	}
	// Scavenger-class work is now shed without running; SLO-class work
	// still serves at this level.
	scavIcpt := a.UnaryInterceptor(func(_ context.Context, info *UnaryServerInfo, _ any) Request {
		return Request{Peer: info.FullMethod, Class: aequitas.Low}
	})
	ran := false
	_, err = scavIcpt(context.Background(), "req", &UnaryServerInfo{FullMethod: "/svc/Get"},
		func(ctx context.Context, req any) (any, error) { ran = true; return nil, nil })
	if !errors.Is(err, ErrShed) {
		t.Fatalf("err = %v, want ErrShed", err)
	}
	if ran {
		t.Error("handler ran for a shed RPC")
	}
	if got := a.m.shed.Load(); got == 0 {
		t.Error("shed counter not incremented")
	}
	if _, err := callInterceptor(t, icpt, context.Background(), "/svc/Get",
		func(ctx context.Context, req any) (any, error) { return nil, nil }); err != nil {
		t.Errorf("SLO-class RPC shed at thin-scavenger level: %v", err)
	}
}
