package main

import (
	"fmt"
	"os"

	"aequitas"
	"aequitas/internal/stats"
)

func init() {
	register("attribution", "per-class latency breakdown (admit/host/transport/fabric) across systems", figAttribution)
}

// figAttribution runs the cluster workload under every system with the
// latency attributor enabled and prints each system's stacked per-class
// mean decomposition: where an RPC's RNL is spent — admission, sender
// host, transport window, pacing stalls, NIC queue, switch queues, and
// the wire residual. Systems that bypass the standard transport (Homa,
// D3, PDQ) report their in-network time entirely as wire: the
// decomposition degrades, it never lies.
func figAttribution(o options) error {
	systems := []aequitas.System{
		aequitas.SystemBaseline, aequitas.SystemAequitas, aequitas.SystemSPQ,
		aequitas.SystemDWRR, aequitas.SystemPFabric, aequitas.SystemQJump,
		aequitas.SystemD3, aequitas.SystemPDQ, aequitas.SystemHoma,
	}
	cfgs := make([]aequitas.SimConfig, len(systems))
	for i, sys := range systems {
		cfg := clusterConfig(o, sys, [3]float64{0.5, 0.3, 0.2})
		cfg.Obs.Attribution = true
		cfgs[i] = cfg
	}
	// This figure is a long multi-system sweep, so completion progress is
	// always reported (stderr keeps piped stdout clean).
	results, err := aequitas.RunMany(cfgs, aequitas.ParallelOptions{
		Workers: o.workers,
		OnProgress: func(p aequitas.Progress) {
			fmt.Fprintf(os.Stderr, "  run %d/%d done (%s)\n", p.Done, p.Total, systems[p.Index])
		},
	})
	if err != nil {
		return err
	}
	for i, res := range results {
		fmt.Printf("%s (mean us per completed RPC):\n", systems[i])
		tb := stats.NewTable("class", "n", "admit", "sender", "transport", "pacing", "nic", "switch", "wire", "rnl")
		for _, c := range res.Classes() {
			a, ok := res.Attribution[c]
			if !ok {
				continue
			}
			tb.AddRow(c.String(), a.N, a.AdmitUS, a.SenderUS, a.TransportUS,
				a.PacingUS, a.NICUS, a.SwitchUS, a.WireUS, a.RNLUS)
		}
		tb.Write(os.Stdout)
	}
	return nil
}
