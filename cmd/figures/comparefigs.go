package main

import (
	"fmt"
	"os"
	"time"

	"aequitas"
	"aequitas/internal/stats"
)

func init() {
	register("17", "fairness: 80 vs 40 Gbps channels converge to equal shares", figFairness)
	register("18", "in-quota channel keeps p_admit ~1; max-min reclaim", figMaxMin)
	register("22", "comparison with pFabric, QJump, D3, PDQ, Homa", figRelatedWork)
	register("28", "beta sensitivity: Fig 17/18 with beta=0.0015", figBetaSensitivity)
	register("ablation", "design ablations: window, size-scaled MD, floor, drop", figAblations)
}

// fairnessConfig builds the §6.5 3-node setup: channel A offers shareA of
// line rate on QoSh, channel B shareB, QoSh SLO 15 µs per 32 KB.
func fairnessConfig(o options, shareA, shareB, beta float64) aequitas.SimConfig {
	return aequitas.SimConfig{
		System: aequitas.SystemAequitas, Hosts: 3, Seed: o.seed,
		Duration: o.long, Warmup: o.long / 8,
		QoSWeights: []float64{4, 1},
		SLOs:       slo32(15, 0),
		Admission:  aequitas.AdmissionParams{Alpha: 0.01, Beta: beta},
		Traffic: []aequitas.HostTraffic{
			{Hosts: []int{0}, Dsts: []int{2}, AvgLoad: 1, Arrival: aequitas.ArrivalPeriodic,
				Classes: []aequitas.TrafficClass{
					{Priority: aequitas.PC, Share: shareA, FixedBytes: 32 << 10},
					{Priority: aequitas.BE, Share: 1 - shareA, FixedBytes: 32 << 10},
				}},
			{Hosts: []int{1}, Dsts: []int{2}, AvgLoad: 1, Arrival: aequitas.ArrivalPeriodic,
				Classes: []aequitas.TrafficClass{
					{Priority: aequitas.PC, Share: shareB, FixedBytes: 32 << 10},
					{Priority: aequitas.BE, Share: 1 - shareB, FixedBytes: 32 << 10},
				}},
		},
		Probes: []aequitas.Probe{
			{Src: 0, Dst: 2, Class: aequitas.High},
			{Src: 1, Dst: 2, Class: aequitas.High},
		},
		SampleEvery: 2 * time.Millisecond,
	}
}

func reportChannels(res *aequitas.Results, names [2]string) {
	tail := 0.6 * res.Probes[0].AdmitProbability.T[len(res.Probes[0].AdmitProbability.T)-1]
	tb := stats.NewTable("channel", "final p_admit", "mean p_admit", "admitted goodput(Gbps)")
	for i, pr := range res.Probes {
		tb.AddRow(names[i], pr.AdmitProbability.Final(0),
			pr.AdmitProbability.MeanAfter(tail), pr.ThroughputGbps.MeanAfter(tail))
	}
	tb.Write(os.Stdout)
}

func figFairness(o options) error {
	res, err := aequitas.Run(fairnessConfig(o, 0.4, 0.8, 0.01))
	if err != nil {
		return err
	}
	reportChannels(res, [2]string{"A (40G offered)", "B (80G offered)"})
	fmt.Printf("QoSh 99.9p RNL %.1fus (SLO 15us); the heavier channel runs at a lower\n",
		res.RNLQuantileUS(aequitas.High, 0.999))
	fmt.Println("p_admit so admitted shares equalise (Fig 17)")
	return nil
}

func figMaxMin(o options) error {
	// Channel A in-quota at 10%; B wants 80%.
	res, err := aequitas.Run(fairnessConfig(o, 0.1, 0.8, 0.01))
	if err != nil {
		return err
	}
	reportChannels(res, [2]string{"A (10G, in quota)", "B (80G)"})
	pA := res.Probes[0].AdmitProbability
	fmt.Printf("in-quota channel A: mean p_admit %.2f (paper: stays ~1.0, 1st-p 0.82);\n",
		pA.MeanAfter(0.3*pA.T[len(pA.T)-1]))
	fmt.Println("channel B reclaims the excess: max-min fairness (Fig 18)")
	return nil
}

func figRelatedWork(o options) error {
	systems := []aequitas.System{
		aequitas.SystemAequitas, aequitas.SystemPFabric, aequitas.SystemQJump,
		aequitas.SystemD3, aequitas.SystemPDQ, aequitas.SystemHoma,
	}
	tb := stats.NewTable("system", "QoSh in SLO(%)", "utilization(%)",
		"QoSh 99.9p(us)", "QoSm 99.9p(us)", "QoSl 99.9p(us)", "terminated")
	var cfgs []aequitas.SimConfig
	for _, system := range systems {
		cfgs = append(cfgs, aequitas.SimConfig{
			System: system, Hosts: o.nodes, Seed: o.seed, Duration: o.dur,
			QoSWeights: []float64{8, 4, 1},
			// Normalised per-MTU SLO targets for the production mix; for
			// D3/PDQ these translate to the 250/300us deadlines below.
			SLOs: []aequitas.SLO{
				{Target: 20 * time.Microsecond, Percentile: 99.9},
				{Target: 40 * time.Microsecond, Percentile: 99.9},
			},
			Traffic: []aequitas.HostTraffic{{
				AvgLoad: 0.8, BurstLoad: 1.4,
				Classes: []aequitas.TrafficClass{
					{Priority: aequitas.PC, Share: 0.5, Size: aequitas.ProductionPCSizes(), Deadline: 250 * time.Microsecond},
					{Priority: aequitas.NC, Share: 0.3, Size: aequitas.ProductionNCSizes(), Deadline: 300 * time.Microsecond},
					{Priority: aequitas.BE, Share: 0.2, Size: aequitas.ProductionBESizes()},
				},
			}},
		})
	}
	results, err := runAll(o, cfgs...)
	if err != nil {
		return err
	}
	for i, res := range results {
		tb.AddRow(systems[i].String(),
			100*res.SLOMetBytesFraction[aequitas.PC],
			100*res.GoodputFraction,
			res.RNLQuantileUS(aequitas.High, 0.999),
			res.RNLQuantileUS(aequitas.Medium, 0.999),
			res.RNLQuantileUS(aequitas.Low, 0.999),
			res.Terminated)
	}
	tb.Write(os.Stdout)
	fmt.Println("(Fig 22: Aequitas admits the most SLO-compliant PC traffic; D3/PDQ")
	fmt.Println("terminate hopeless RPCs and sacrifice utilisation; pFabric/Homa favour")
	fmt.Println("small RPCs; QJump holds packet latency but not RPC-level SLOs)")
	return nil
}

func figBetaSensitivity(o options) error {
	betas := []float64{0.01, 0.0015}
	var cfgs []aequitas.SimConfig
	for _, beta := range betas {
		cfgs = append(cfgs, fairnessConfig(o, 0.1, 0.8, beta))
	}
	results, err := runAll(o, cfgs...)
	if err != nil {
		return err
	}
	for i, res := range results {
		fmt.Printf("beta = %v (Fig 18 setup, in-quota channel A):\n", betas[i])
		reportChannels(res, [2]string{"A (10G, in quota)", "B (80G)"})
		fmt.Printf("QoSh 99.9p RNL %.1fus\n\n", res.RNLQuantileUS(aequitas.High, 0.999))
	}
	fmt.Println("smaller beta stabilises p_admit for in-quota channels but is less")
	fmt.Println("aggressive about SLO compliance (Appendix C)")
	return nil
}

func figAblations(o options) error {
	base := func() aequitas.SimConfig {
		return aequitas.SimConfig{
			System: aequitas.SystemAequitas, Hosts: 3, Seed: o.seed,
			Duration: 80 * time.Millisecond, Warmup: 30 * time.Millisecond,
			QoSWeights: []float64{4, 1},
			SLOs:       slo32(25, 0),
			Traffic: []aequitas.HostTraffic{{
				Hosts: []int{0, 1}, Dsts: []int{2},
				AvgLoad: 1.0, Arrival: aequitas.ArrivalPeriodic,
				Classes: []aequitas.TrafficClass{
					{Priority: aequitas.PC, Share: 0.7, FixedBytes: 32 << 10},
					{Priority: aequitas.BE, Share: 0.3, FixedBytes: 32 << 10},
				},
			}},
		}
	}
	variants := []struct {
		name string
		mod  func(*aequitas.SimConfig)
	}{
		{"full design", func(*aequitas.SimConfig) {}},
		{"no increment window", func(c *aequitas.SimConfig) { c.Admission.NoIncrementWindow = true }},
		{"no size-scaled MD", func(c *aequitas.SimConfig) { c.Admission.NoSizeScaledMD = true }},
		{"floor = 0.4 (too high)", func(c *aequitas.SimConfig) { c.Admission.Floor = 0.4 }},
		{"drop instead of downgrade", func(c *aequitas.SimConfig) { c.Admission.DropInsteadOfDowngrade = true }},
	}
	tb := stats.NewTable("variant", "QoSh 99.9p(us)", "admitted QoSh(%)", "goodput frac", "dropped")
	var cfgs []aequitas.SimConfig
	for _, v := range variants {
		cfg := base()
		v.mod(&cfg)
		cfgs = append(cfgs, cfg)
	}
	results, err := runAll(o, cfgs...)
	if err != nil {
		return err
	}
	for i, res := range results {
		tb.AddRow(variants[i].name,
			res.RNLQuantileUS(aequitas.High, 0.999),
			100*res.AdmittedMix[0],
			res.GoodputFraction,
			res.Dropped)
	}
	tb.Write(os.Stdout)
	fmt.Println("removing the increment window overshoots and breaks the SLO; removing")
	fmt.Println("size-scaled MD over-admits; a high floor forces SLO violations; dropping")
	fmt.Println("permanently discards work that downgrading would eventually complete")
	return nil
}
