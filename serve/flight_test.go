package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"aequitas"
	"aequitas/internal/obs/flight"
	"aequitas/internal/sim"
)

// httpOK is a trivial 200 handler.
func httpOK() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
}

// overloadFlightConfig is an engine tuned to fire within a short test:
// tiny windows, an effectively-zero SLO budget, and no tick throttling.
func overloadFlightConfig(dir string) *FlightConfig {
	return &FlightConfig{
		Records:      1 << 12,
		SampleAdmits: 1,
		TickEvery:    time.Microsecond,
		ProfileDir:   dir,
		Engine: &flight.EngineConfig{
			ShortWindow: 50 * sim.Millisecond,
			LongWindow:  500 * sim.Millisecond,
			SLOBudget:   0.001,
			MinSamples:  10,
		},
	}
}

// TestServeFlightBurnRateTrigger is the serving-side acceptance check:
// synthetic overload against an unmeetable SLO must fire the burn-rate
// trigger, freeze the ring into a dump, capture profiles, and surface it
// all at /debug/flight.
func TestServeFlightBurnRateTrigger(t *testing.T) {
	dir := t.TempDir()
	var (
		logMu  sync.Mutex
		logged int
	)
	a, err := New(Config{
		Controller: newController(t),
		Flight:     overloadFlightConfig(dir),
		DecisionLog: func(v Verdict) {
			logMu.Lock()
			logged++
			logMu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h := a.Middleware(httpOK())
	for i := 0; i < 400; i++ {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest("GET", "/backend", nil)
		h.ServeHTTP(rec, req)
		if a.FlightTriggered() > 0 {
			break
		}
		// The engine ticks on wall time; let it move.
		time.Sleep(100 * time.Microsecond)
	}
	if a.FlightTriggered() == 0 {
		t.Fatal("burn-rate trigger never fired under sustained SLO misses")
	}
	logMu.Lock()
	if logged == 0 {
		t.Error("DecisionLog hook never invoked")
	}
	logMu.Unlock()

	// Status endpoint reports the trigger.
	rec := httptest.NewRecorder()
	a.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/flight", nil))
	if rec.Code != 200 {
		t.Fatalf("/debug/flight status %d", rec.Code)
	}
	var st flightStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("status not JSON: %v\n%s", err, rec.Body.String())
	}
	if st.Schema != flight.Schema || !st.Enabled || st.Triggers == 0 {
		t.Fatalf("status = %+v", st)
	}
	if st.LastTrigger == nil || st.LastTrigger.Kind != "burn_rate" {
		t.Fatalf("last trigger = %+v, want burn_rate", st.LastTrigger)
	}
	if st.LastTrigger.Err != "" {
		t.Fatalf("trigger capture errored: %s", st.LastTrigger.Err)
	}
	if len(st.LastTrigger.Profiles) != 2 {
		t.Fatalf("profiles = %v, want goroutine+heap", st.LastTrigger.Profiles)
	}
	for _, p := range st.LastTrigger.Profiles {
		if filepath.Dir(p) != dir {
			t.Errorf("profile %s not under %s", p, dir)
		}
	}

	// The frozen dump is valid flight NDJSON.
	rec = httptest.NewRecorder()
	a.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/flight?format=ndjson&dump=last", nil))
	if rec.Code != 200 {
		t.Fatalf("last dump status %d", rec.Code)
	}
	dumps, records, err := flight.ValidateDump(bytes.NewReader(rec.Body.Bytes()))
	if err != nil {
		t.Fatalf("trigger dump invalid: %v", err)
	}
	if dumps != 1 || records == 0 {
		t.Fatalf("trigger dump: %d dumps, %d records", dumps, records)
	}
	if !strings.Contains(rec.Body.String(), `"peer_name":"/backend"`) {
		t.Error("dump records missing resolved peer names")
	}

	// The live dump endpoint works too (manual trigger, no reset).
	rec = httptest.NewRecorder()
	a.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/flight?format=ndjson", nil))
	if rec.Code != 200 {
		t.Fatalf("live dump status %d", rec.Code)
	}
	if _, _, err := flight.ValidateDump(bytes.NewReader(rec.Body.Bytes())); err != nil {
		t.Fatalf("live dump invalid: %v", err)
	}
	if !strings.Contains(rec.Body.String(), `"trigger":"manual"`) {
		t.Error("live dump not marked as a manual trigger")
	}
}

// TestServeFlightDisabled checks the zero-config path: no ring attached,
// /debug/flight 404s, DumpFlight errors.
func TestServeFlightDisabled(t *testing.T) {
	a := newAdmission(t, false)
	h := a.Middleware(httpOK())
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
	if rec.Code != 200 {
		t.Fatalf("request status %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	a.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/flight", nil))
	if rec.Code != 404 {
		t.Errorf("/debug/flight without recorder: status %d, want 404", rec.Code)
	}
	var buf bytes.Buffer
	if err := a.DumpFlight(&buf, flight.TriggerFinal, "shutdown"); err == nil {
		t.Error("DumpFlight succeeded without a recorder")
	}
	if a.FlightTriggered() != 0 {
		t.Error("triggers counted without a recorder")
	}
}

// TestServeFlightConcurrent hammers the middleware, the engine tick path
// and the flight endpoints from many goroutines; under -race it is the
// recorder's serving-side data-race check.
func TestServeFlightConcurrent(t *testing.T) {
	a, err := New(Config{Controller: newController(t), Flight: overloadFlightConfig("")})
	if err != nil {
		t.Fatal(err)
	}
	h := a.Middleware(httpOK())
	handler := a.Handler()
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest("GET", "/p", nil))
				if i%40 == 0 {
					drec := httptest.NewRecorder()
					handler.ServeHTTP(drec, httptest.NewRequest("GET", "/debug/flight?format=ndjson", nil))
					if _, _, err := flight.ValidateDump(bytes.NewReader(drec.Body.Bytes())); err != nil {
						t.Errorf("concurrent dump invalid: %v", err)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	var buf bytes.Buffer
	if err := a.DumpFlight(&buf, flight.TriggerFinal, "test end"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := flight.ValidateDump(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("final dump invalid: %v", err)
	}
}

// TestClassSlotClamp pins the metric-array fold: classes beyond the last
// slot land in the scavenger histogram and negative classes in slot 0 —
// no panic, no silently dropped observation.
func TestClassSlotClamp(t *testing.T) {
	cases := []struct {
		class aequitas.Class
		want  int
	}{
		{aequitas.High, 0},
		{aequitas.Low, 2},
		{aequitas.Class(maxClasses - 1), maxClasses - 1},
		{aequitas.Class(maxClasses), maxClasses - 1},
		{aequitas.Class(127), maxClasses - 1},
		{aequitas.Class(-1), 0},
	}
	for _, c := range cases {
		if got := classSlot(c.class); got != c.want {
			t.Errorf("classSlot(%d) = %d, want %d", c.class, got, c.want)
		}
	}

	// End to end: completions on an out-of-range class must fold into the
	// last histogram rather than panic or vanish.
	a := newAdmission(t, false)
	a.m.completed(aequitas.Class(42), time.Millisecond)
	a.m.completed(aequitas.Class(-3), time.Millisecond)
	a.m.mu.Lock()
	defer a.m.mu.Unlock()
	if a.m.lat[maxClasses-1] == nil || a.m.lat[maxClasses-1].N() != 1 {
		t.Error("out-of-range class not folded into the scavenger slot")
	}
	if a.m.lat[0] == nil || a.m.lat[0].N() != 1 {
		t.Error("negative class not clamped to slot 0")
	}
}
