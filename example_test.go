package aequitas_test

import (
	"fmt"
	"time"

	"aequitas"
)

// ExampleNewController shows the admission controller embedded in a real
// RPC stack: decide a class per RPC, feed back measured latency.
func ExampleNewController() {
	ctl, err := aequitas.NewController(aequitas.ControllerConfig{
		SLOs: []aequitas.SLO{
			{Target: 15 * time.Microsecond, ReferenceBytes: 32 << 10}, // QoSh
			{Target: 25 * time.Microsecond, ReferenceBytes: 32 << 10}, // QoSm
		},
	})
	if err != nil {
		panic(err)
	}

	d := ctl.Admit("storage-server-17", aequitas.High, 32<<10)
	fmt.Println("issue on:", d.Class, "downgraded:", d.Downgraded)

	// ... send the RPC on d.Class, measure its network latency ...
	ctl.Observe("storage-server-17", d.Class, 12*time.Microsecond, 32<<10)
	fmt.Printf("p_admit: %.2f\n", ctl.AdmitProbability("storage-server-17", aequitas.High))
	// Output:
	// issue on: QoSh downgraded: false
	// p_admit: 1.00
}

// ExampleDelayBoundHigh evaluates the closed-form worst-case WFQ delay of
// §4.1 at the Figure 8 parameters.
func ExampleDelayBoundHigh() {
	// φ=4:1 weights, burst load ρ=1.2, average load µ=0.8.
	fmt.Printf("%.3f\n", aequitas.DelayBoundHigh(4, 1.2, 0.8, 0.5)) // within guaranteed rate
	fmt.Printf("%.3f\n", aequitas.DelayBoundHigh(4, 1.2, 0.8, 0.9)) // past the inversion point
	// Output:
	// 0.000
	// 0.133
}

// ExampleGuaranteedShare computes the §5.2 floor on admitted traffic.
func ExampleGuaranteedShare() {
	share := aequitas.GuaranteedShare([]float64{8, 4, 1}, 0, 0.8, 1.4)
	fmt.Printf("QoSh is guaranteed at least %.1f%% of line rate\n", 100*share)
	// Output:
	// QoSh is guaranteed at least 35.2% of line rate
}

// ExampleRun simulates a small overloaded cluster and reads the per-QoS
// tail latency.
func ExampleRun() {
	res, err := aequitas.Run(aequitas.SimConfig{
		System:   aequitas.SystemAequitas,
		Hosts:    3,
		Seed:     1,
		Duration: 10 * time.Millisecond,
		SLOs: []aequitas.SLO{
			{Target: 25 * time.Microsecond, ReferenceBytes: 32 << 10},
			{Target: 50 * time.Microsecond, ReferenceBytes: 32 << 10},
		},
		Traffic: []aequitas.HostTraffic{{
			Hosts:   []int{0, 1},
			Dsts:    []int{2},
			AvgLoad: 1.0,
			Classes: []aequitas.TrafficClass{
				{Priority: aequitas.PC, Share: 0.7, FixedBytes: 32 << 10},
				{Priority: aequitas.BE, Share: 0.3, FixedBytes: 32 << 10},
			},
		}},
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("downgrades happened:", res.Downgraded > 0)
	fmt.Println("QoSh tail below 10x SLO:", res.RNLQuantileUS(aequitas.High, 0.999) < 250)
	// Output:
	// downgrades happened: true
	// QoSh tail below 10x SLO: true
}
