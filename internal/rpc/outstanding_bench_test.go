package rpc

import (
	"testing"

	"aequitas/internal/qos"
)

// mkStacks builds hosts stacks with a plausible live outstanding pattern:
// each stack has RPCs in flight to ~1/4 of the destinations across levels
// classes.
func mkStacks(hosts, levels int) []*Stack {
	stacks := make([]*Stack, hosts)
	for i := range stacks {
		st := &Stack{outstanding: make(map[outKey]int)}
		for dst := 0; dst < hosts; dst++ {
			if (dst+i)%4 != 0 {
				continue
			}
			for cl := 0; cl < levels; cl++ {
				st.outstanding[outKey{dst, qos.Class(cl)}] = dst%3 + 1
			}
		}
		stacks[i] = st
	}
	return stacks
}

// BenchmarkOutstandingSampleQuadratic is the former collector pattern: for
// every destination, probe every stack at every class — O(hosts²·levels)
// map lookups per sampling tick.
func BenchmarkOutstandingSampleQuadratic(b *testing.B) {
	const hosts, levels = 32, 3
	stacks := mkStacks(hosts, levels)
	b.ReportAllocs()
	var sink int
	for i := 0; i < b.N; i++ {
		for dst := 0; dst < hosts; dst++ {
			var hi, lo int
			for _, st := range stacks {
				for cl := 0; cl < levels-1; cl++ {
					hi += st.OutstandingClass(dst, qos.Class(cl))
				}
				lo += st.OutstandingClass(dst, qos.Class(levels-1))
			}
			sink += hi + lo
		}
	}
	_ = sink
}

// BenchmarkOutstandingSampleOnePass is the replacement: one pass over each
// stack's live entries, accumulating per-destination counts.
func BenchmarkOutstandingSampleOnePass(b *testing.B) {
	const hosts, levels = 32, 3
	stacks := mkStacks(hosts, levels)
	hi := make([]int, hosts)
	lo := make([]int, hosts)
	b.ReportAllocs()
	var sink int
	for i := 0; i < b.N; i++ {
		for d := range hi {
			hi[d], lo[d] = 0, 0
		}
		for _, st := range stacks {
			st.ForEachOutstanding(func(dst int, cl qos.Class, n int) {
				if cl >= qos.Class(levels-1) {
					lo[dst] += n
				} else {
					hi[dst] += n
				}
			})
		}
		for d := range hi {
			sink += hi[d] + lo[d]
		}
	}
	_ = sink
}

// TestOutstandingOnePassMatchesQuadratic pins the two accumulation
// strategies to identical totals.
func TestOutstandingOnePassMatchesQuadratic(t *testing.T) {
	const hosts, levels = 16, 3
	stacks := mkStacks(hosts, levels)
	for dst := 0; dst < hosts; dst++ {
		var hiQ, loQ int
		for _, st := range stacks {
			for cl := 0; cl < levels-1; cl++ {
				hiQ += st.OutstandingClass(dst, qos.Class(cl))
			}
			loQ += st.OutstandingClass(dst, qos.Class(levels-1))
		}
		var hiP, loP int
		for _, st := range stacks {
			st.ForEachOutstanding(func(d int, cl qos.Class, n int) {
				if d != dst {
					return
				}
				if cl >= qos.Class(levels-1) {
					loP += n
				} else {
					hiP += n
				}
			})
		}
		if hiQ != hiP || loQ != loP {
			t.Fatalf("dst %d: quadratic (%d,%d) != one-pass (%d,%d)", dst, hiQ, loQ, hiP, loP)
		}
	}
}
