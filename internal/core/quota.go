package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"aequitas/internal/obs/flight"
	"aequitas/internal/qos"
	"aequitas/internal/rpc"
	"aequitas/internal/sim"
)

// QuotaServer is the centralized per-tenant rate-guarantee extension the
// paper leaves as future work (§5.2): "Aequitas provides latency SLOs for
// all admitted RPCs, [but] does not guarantee the amount of traffic
// admitted on a per-application or per-tenant basis … One can augment
// Aequitas to provide application/tenant traffic rate guarantees with a
// centralized RPC quota server."
//
// The server grants each tenant a guaranteed byte rate per QoS class.
// Hosts consult their tenant's local QuotaClient before the probabilistic
// admission draw: traffic within quota bypasses the draw (it is always
// admitted on the requested class, consuming quota), and traffic beyond
// quota falls through to the normal Algorithm 1 path. Quotas are enforced
// with token buckets refilled at the granted rate; the sum of grants per
// class is capped at the class's provisioned capacity so that in-quota
// traffic stays inside the admissible region by construction.
//
// QuotaServer and QuotaClient are safe for concurrent use: Grant/Revoke
// from a control plane can race with InQuota checks on the serving path.
//
// Clients consume grants as TTL leases (LeaseFor): a host caches the
// granted rate for QuotaClient.LeaseTTL and keeps enforcing it locally
// while the lease is fresh, so a brief quota-plane outage is invisible.
// When the server is unreachable (SetAvailable(false), the chaos
// harness's outage window) past the lease TTL, the lease is stale and
// the QuotaAdmitter's failure policy decides what happens.
type QuotaServer struct {
	mu sync.Mutex
	// capacity[class] is the total grantable rate per class in
	// bytes/second.
	capacity map[qos.Class]float64
	granted  map[qos.Class]float64
	tenants  map[string]*tenantGrant
	// down marks the server unreachable: lease refreshes fail until
	// SetAvailable(true). It models the quota control plane stalling,
	// not the grants disappearing — Grant/Revoke still work (the state
	// is intact), clients just cannot read it.
	down atomic.Bool
}

// SetAvailable marks the quota plane reachable (true) or unreachable
// (false) from the serving hosts — the chaos harness's outage control.
func (q *QuotaServer) SetAvailable(up bool) { q.down.Store(!up) }

// Available reports whether lease refreshes currently succeed.
func (q *QuotaServer) Available() bool { return !q.down.Load() }

type tenantGrant struct {
	rates map[qos.Class]float64
}

// NewQuotaServer creates a server with the given per-class grantable
// capacities (bytes/second).
func NewQuotaServer(capacity map[qos.Class]float64) *QuotaServer {
	cp := make(map[qos.Class]float64, len(capacity))
	for k, v := range capacity {
		cp[k] = v
	}
	return &QuotaServer{
		capacity: cp,
		granted:  make(map[qos.Class]float64),
		tenants:  make(map[string]*tenantGrant),
	}
}

// Grant reserves rate bytes/second on class for tenant, on top of any
// existing grant. It fails when the class's remaining capacity is
// insufficient — admission control for quotas themselves.
func (q *QuotaServer) Grant(tenant string, class qos.Class, rate float64) error {
	if rate < 0 {
		return fmt.Errorf("core: negative quota rate")
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	capacity, ok := q.capacity[class]
	if !ok {
		return fmt.Errorf("core: class %v has no grantable capacity", class)
	}
	if q.granted[class]+rate > capacity+1e-9 {
		return fmt.Errorf("core: class %v capacity exhausted: %g of %g granted, %g requested",
			class, q.granted[class], capacity, rate)
	}
	t, ok := q.tenants[tenant]
	if !ok {
		t = &tenantGrant{rates: make(map[qos.Class]float64)}
		q.tenants[tenant] = t
	}
	t.rates[class] += rate
	q.granted[class] += rate
	return nil
}

// Revoke releases up to rate bytes/second of tenant's grant on class.
func (q *QuotaServer) Revoke(tenant string, class qos.Class, rate float64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	t, ok := q.tenants[tenant]
	if !ok {
		return
	}
	if rate > t.rates[class] {
		rate = t.rates[class]
	}
	t.rates[class] -= rate
	q.granted[class] -= rate
}

// GrantedRate reports tenant's current grant on class in bytes/second.
func (q *QuotaServer) GrantedRate(tenant string, class qos.Class) float64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	if t, ok := q.tenants[tenant]; ok {
		return t.rates[class]
	}
	return 0
}

// Remaining reports the ungranted capacity on class.
func (q *QuotaServer) Remaining(class qos.Class) float64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.capacity[class] - q.granted[class]
}

// Lease is a time-bounded snapshot of a tenant's granted rate: the
// client enforces Rate locally until Expires, then must refresh.
type Lease struct {
	// Rate is the granted rate in bytes/second at issue time.
	Rate float64
	// Expires is the instant (on the client's clock) the lease goes
	// stale.
	Expires sim.Time
}

// LeaseFor issues tenant's current grant on class as a lease expiring at
// now+ttl. ok is false when the server is unreachable — the client must
// keep its previous lease (if still fresh) or report staleness.
func (q *QuotaServer) LeaseFor(tenant string, class qos.Class, now sim.Time, ttl sim.Duration) (Lease, bool) {
	if q.down.Load() {
		return Lease{}, false
	}
	return Lease{Rate: q.GrantedRate(tenant, class), Expires: now + ttl}, true
}

// Client returns a host-local quota enforcer for tenant, timestamped by
// its own monotonic wall clock. Clients read the granted rate through on
// each refill, so Grant/Revoke take effect immediately.
func (q *QuotaServer) Client(tenant string) *QuotaClient {
	return q.ClientWithClock(tenant, nil)
}

// ClientWithClock is Client with an explicit time source; a nil clock
// defaults to a fresh WallClock. Simulations pass their SimClock so
// bucket refills run on virtual time.
func (q *QuotaServer) ClientWithClock(tenant string, clk Clock) *QuotaClient {
	if clk == nil {
		clk = NewWallClock()
	}
	return &QuotaClient{server: q, tenant: tenant, clock: clk, buckets: make(map[qos.Class]*quotaBucket)}
}

// QuotaClient enforces one tenant's quota at one sending host with
// per-class token buckets fed by TTL leases on the server's grants. It
// is safe for concurrent use.
type QuotaClient struct {
	server *QuotaServer
	tenant string
	clock  Clock

	mu      sync.Mutex
	buckets map[qos.Class]*quotaBucket
	// BurstSeconds bounds token accumulation to rate×BurstSeconds
	// (default 0.01 s). Set it before serving begins.
	BurstSeconds float64
	// LeaseTTL is how long a fetched grant stays valid without a
	// refresh. Zero (the default) refreshes on every check, so
	// Grant/Revoke take effect immediately — but any quota-plane outage
	// is immediately visible too. A positive TTL rides through outages
	// shorter than the TTL at the cost of Grant/Revoke taking up to one
	// TTL to propagate. Set it before serving begins.
	LeaseTTL time.Duration

	// Lease-health counters, atomically updated.
	refreshes   atomic.Int64
	staleChecks atomic.Int64
}

// QuotaState is the tri-state outcome of a quota check.
type QuotaState uint8

const (
	// QuotaNo: the request does not fit the tenant's tokens (or the
	// tenant has no grant); fall through to the probabilistic path.
	QuotaNo QuotaState = iota
	// QuotaYes: the request fits and the tokens were consumed; admit on
	// the requested class, bypassing the draw.
	QuotaYes
	// QuotaStale: the quota plane is unreachable and the lease has
	// expired — the client cannot tell whether the tenant is in quota.
	// The QuotaAdmitter's failure policy decides.
	QuotaStale
)

func (s QuotaState) String() string {
	switch s {
	case QuotaYes:
		return "yes"
	case QuotaStale:
		return "stale"
	default:
		return "no"
	}
}

// QuotaLeaseStats snapshots the client's lease health.
type QuotaLeaseStats struct {
	// Refreshes counts successful lease fetches from the server.
	Refreshes int64
	// StaleChecks counts quota checks answered while the lease was
	// expired and the server unreachable.
	StaleChecks int64
}

// LeaseStats returns an atomic snapshot of the lease-health counters.
func (c *QuotaClient) LeaseStats() QuotaLeaseStats {
	return QuotaLeaseStats{
		Refreshes:   c.refreshes.Load(),
		StaleChecks: c.staleChecks.Load(),
	}
}

type quotaBucket struct {
	tokens    float64
	last      sim.Time
	lease     Lease
	haveLease bool
}

// InQuota reports whether bytes on class fit the tenant's remaining
// tokens now, consuming them if so. A stale lease reads as out of quota;
// callers that need to distinguish staleness use Check/CheckAt.
func (c *QuotaClient) InQuota(class qos.Class, bytes int64) bool {
	return c.InQuotaAt(c.clock.Now(), class, bytes)
}

// InQuotaAt is InQuota with an explicit timestamp, for callers that
// manage their own time base. Timestamps must not move backwards.
func (c *QuotaClient) InQuotaAt(now sim.Time, class qos.Class, bytes int64) bool {
	return c.CheckAt(now, class, bytes) == QuotaYes
}

// Check is CheckAt on the client's clock.
func (c *QuotaClient) Check(class qos.Class, bytes int64) QuotaState {
	return c.CheckAt(c.clock.Now(), class, bytes)
}

// CheckAt runs one quota check at now: refresh the class's lease if it
// has expired, then try to consume bytes from the token bucket refilled
// at the leased rate. It reports QuotaStale when the lease is expired
// and the server unreachable — the caller's failure policy applies.
func (c *QuotaClient) CheckAt(now sim.Time, class qos.Class, bytes int64) QuotaState {
	// The server lock (inside LeaseFor/GrantedRate) and the client lock
	// never nest: the refresh call happens under c.mu but LeaseFor only
	// takes q.mu, and the server never calls back into the client.
	c.mu.Lock()
	defer c.mu.Unlock()
	b, ok := c.buckets[class]
	if !ok {
		b = &quotaBucket{last: now}
		c.buckets[class] = b
	}
	if !b.haveLease || now >= b.lease.Expires {
		lease, up := c.server.LeaseFor(c.tenant, class, now, sim.FromStd(c.LeaseTTL))
		if up {
			fresh := !b.haveLease
			if fresh || lease.Rate != b.lease.Rate {
				// A fresh or re-rated bucket starts with one burst.
				b.tokens = lease.Rate * c.burstSeconds()
				b.last = now
			}
			b.lease, b.haveLease = lease, true
			c.refreshes.Add(1)
		} else {
			// Unreachable past the TTL: the lease is stale.
			c.staleChecks.Add(1)
			return QuotaStale
		}
	}
	rate := b.lease.Rate
	if rate <= 0 {
		return QuotaNo
	}
	// Refill.
	b.tokens += rate * (now - b.last).Seconds()
	b.last = now
	if max := rate * c.burstSeconds(); b.tokens > max {
		b.tokens = max
	}
	if b.tokens < float64(bytes) {
		return QuotaNo
	}
	b.tokens -= float64(bytes)
	return QuotaYes
}

func (c *QuotaClient) burstSeconds() float64 {
	if c.BurstSeconds > 0 {
		return c.BurstSeconds
	}
	return 0.01
}

// QuotaFailPolicy decides what a QuotaAdmitter does when the quota plane
// is unreachable and the local lease has expired.
type QuotaFailPolicy uint8

const (
	// QuotaFailOpen (the default) falls through to the normal Algorithm 1
	// probabilistic path: the quota bypass is lost but admission control
	// keeps working, so goodput degrades gracefully toward the
	// quota-free baseline.
	QuotaFailOpen QuotaFailPolicy = iota
	// QuotaFailClosed drops SLO-class RPCs outright while the lease is
	// stale: strict enforcement for deployments where admitting
	// unaccounted traffic is worse than shedding it.
	QuotaFailClosed
)

func (p QuotaFailPolicy) String() string {
	if p == QuotaFailClosed {
		return "fail-closed"
	}
	return "fail-open"
}

// QuotaAdmitter layers tenant quotas over a Controller: in-quota RPCs are
// admitted on their requested class unconditionally; out-of-quota RPCs go
// through the normal probabilistic path; quota-plane outages past the
// lease TTL are handled per Policy. It implements rpc.Admitter and
// shares the Controller's clock for bucket refills.
type QuotaAdmitter struct {
	Controller *Controller
	Client     *QuotaClient
	// Policy is the stale-lease failure policy (default QuotaFailOpen).
	Policy QuotaFailPolicy
	// InQuotaAdmits counts RPCs admitted on the quota bypass; updated
	// atomically.
	InQuotaAdmits int64
	// StalePassed counts RPCs that fell through to the probabilistic
	// path because the lease was stale under QuotaFailOpen.
	StalePassed int64
	// StaleDropped counts RPCs dropped because the lease was stale under
	// QuotaFailClosed.
	StaleDropped int64
}

// Admit implements rpc.Admitter.
func (qa *QuotaAdmitter) Admit(dst int, requested qos.Class, sizeMTUs int64) rpc.Decision {
	if requested < 0 || requested >= qa.Controller.lowest {
		// Scavenger (and out-of-range) traffic never consumes quota.
		return qa.Controller.Admit(dst, requested, sizeMTUs)
	}
	bytes := sizeMTUs * 1436
	now := qa.Controller.clock.Now()
	switch qa.Client.CheckAt(now, requested, bytes) {
	case QuotaYes:
		atomic.AddInt64(&qa.InQuotaAdmits, 1)
		atomic.AddInt64(&qa.Controller.Stats.Admitted, 1)
		// The flight record marks the quota bypass explicitly: these RPCs
		// were admitted without consulting p_admit.
		qa.Controller.flight.QuotaBypassDecision(now, qa.Controller.flightSrc,
			int32(dst), int8(requested), int32(sizeMTUs))
		return rpc.Decision{Class: requested}
	case QuotaStale:
		if qa.Policy == QuotaFailClosed {
			atomic.AddInt64(&qa.StaleDropped, 1)
			atomic.AddInt64(&qa.Controller.Stats.Dropped, 1)
			if qa.Controller.flight != nil {
				qa.Controller.recordDecision(dst, requested, requested,
					flight.VerdictDrop, 0, sizeMTUs)
			}
			return rpc.Decision{Drop: true}
		}
		atomic.AddInt64(&qa.StalePassed, 1)
	}
	return qa.Controller.Admit(dst, requested, sizeMTUs)
}

// AdmitProbability implements rpc.ProbabilityReporter by delegating to
// the wrapped controller (in-quota traffic bypasses the draw, but the
// probability that would apply is still the controller's).
func (qa *QuotaAdmitter) AdmitProbability(dst int, class qos.Class) float64 {
	return qa.Controller.AdmitProbability(dst, class)
}

// Observe implements rpc.Admitter. In-quota traffic still contributes
// latency measurements: if the quota was over-provisioned relative to the
// SLO, the controller must learn it.
func (qa *QuotaAdmitter) Observe(dst int, run qos.Class, rnl sim.Duration, sizeMTUs int64) {
	qa.Controller.Observe(dst, run, rnl, sizeMTUs)
}
